//! The multichip scaling ladder: one fixed aggregate fabric served by a
//! growing number of smaller chips, measured through the threaded
//! service.
//!
//! The paper's multichip decomposition builds one big partial
//! concentrator from many small hyperconcentrator chips; the serving
//! fabric mirrors it. A [`ladder`] run fixes the aggregate switching
//! capacity (`aggregate_n` inputs → `aggregate_n / 2` outputs) and
//! serves it at each chip count `k` as `k` shards, each shard one
//! Columnsort-based chip (§5, Theorem 4) over `aggregate_n / k` inputs
//! with a fixed column count — so doubling the chip count halves every
//! chip's sort-network size. The workload is scaled to offer the same
//! total message count at every rung.
//!
//! Two effects compound along the ladder:
//!
//! * **algorithmic** — a chip's sort networks shrink superlinearly with
//!   its input count, so even on a single core more, smaller chips move
//!   more messages per second;
//! * **parallel** — each chip is an independent shard behind its own
//!   SPSC ingress ring, so on a multicore host the rungs additionally
//!   scale with available cores.
//!
//! [`ScalingLadder::efficiency`] reports msgs/s at `k` chips divided by
//! `k ×` msgs/s at one chip — the classic parallel-efficiency ratio,
//! deliberately pessimistic on a single core (its ceiling there is the
//! algorithmic win alone, divided by `k`).
//!
//! That raw ratio is **host-dependent**: a rung whose chip count
//! exceeds `available_parallelism` cannot physically speed up past the
//! core count, so the same build shows different `scaling_efficiency`
//! on a 4-core CI runner and a 64-core workstation. Every rung
//! therefore records [`ScalingPoint::threads`] — the worker threads the
//! host can actually run in parallel, `min(chips, cores)` — and
//! [`ScalingLadder::normalized_efficiency`] divides by the *achievable*
//! speedup (`threads_k / threads_1`) instead of the chip ratio, making
//! the figure comparable across machines. BENCH_fabric.json carries
//! both, plus the core count the run saw.

use std::sync::Arc;
use std::time::Instant;

use concentrator::columnsort_switch::ColumnsortSwitch;
use switchsim::TrafficModel;

use crate::config::FabricConfig;
use crate::loadgen::{drive_service_batched, LoadPlan};
use crate::service::FabricService;

/// Columns of every chip's valid-bit matrix (`s` in §5): fixed along the
/// ladder so chip size varies only through the row count.
pub const CHIP_COLS: usize = 4;

/// One shard's share of a ladder rung.
#[derive(Debug, Clone)]
pub struct ShardScaling {
    /// Shard (= chip) index.
    pub shard: usize,
    /// Messages this shard delivered.
    pub delivered: u64,
    /// This shard's delivery rate over the rung's wall time.
    pub msgs_per_sec: f64,
    /// Output-slot utilization: delivered over `frames × m` (the chip's
    /// maximum deliveries had every executed frame filled every output).
    pub utilization: f64,
}

/// One rung of the ladder: the aggregate fabric served by `chips` chips.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Chip (= shard) count.
    pub chips: usize,
    /// Worker threads the host can actually run in parallel for this
    /// rung: `min(chips, cores)`. The expected-speedup base for
    /// [`ScalingLadder::normalized_efficiency`].
    pub threads: usize,
    /// Inputs per chip (`aggregate_n / chips`).
    pub chip_inputs: usize,
    /// Outputs per chip.
    pub chip_outputs: usize,
    /// Messages generated (constant along the ladder by construction).
    pub generated: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Compiled sweeps dispatched.
    pub sweeps: u64,
    /// Routing frames executed.
    pub frames: u64,
    /// Wall-clock seconds for the drive plus drain.
    pub secs: f64,
    /// Per-shard breakdown, in shard order.
    pub per_shard: Vec<ShardScaling>,
}

impl ScalingPoint {
    /// Aggregate delivery rate.
    pub fn msgs_per_sec(&self) -> f64 {
        if self.secs > 0.0 {
            self.delivered as f64 / self.secs
        } else {
            0.0
        }
    }
}

/// A complete ladder run.
#[derive(Debug, Clone)]
pub struct ScalingLadder {
    /// Aggregate fabric inputs every rung serves.
    pub aggregate_n: usize,
    /// One rung per chip count, in ascending order.
    pub points: Vec<ScalingPoint>,
    /// Cores the host reported (`available_parallelism`); single-core
    /// runs still show the algorithmic win, multicore runs compound it.
    pub cores: usize,
}

impl ScalingLadder {
    /// Parallel efficiency of rung `i`: msgs/s at `k` chips over
    /// `k ×` msgs/s at the first rung. Host-dependent once `k` exceeds
    /// the core count — prefer
    /// [`ScalingLadder::normalized_efficiency`] for cross-machine
    /// comparison.
    pub fn efficiency(&self, i: usize) -> f64 {
        let base = self.points[0].msgs_per_sec() * self.points[i].chips as f64
            / self.points[0].chips as f64;
        if base > 0.0 {
            self.points[i].msgs_per_sec() / base
        } else {
            0.0
        }
    }

    /// Core-aware parallel efficiency of rung `i`: msgs/s at rung `i`
    /// over the *achievable* speedup from the first rung —
    /// `threads_i / threads_0` — instead of the raw chip ratio. On a
    /// host with at least as many cores as chips this equals
    /// [`ScalingLadder::efficiency`]; on a smaller host it stops
    /// penalizing rungs for parallelism the machine never had, so the
    /// figure is comparable across machines.
    pub fn normalized_efficiency(&self, i: usize) -> f64 {
        let base = self.points[0].msgs_per_sec() * self.points[i].threads as f64
            / self.points[0].threads as f64;
        if base > 0.0 {
            self.points[i].msgs_per_sec() / base
        } else {
            0.0
        }
    }
}

/// Run the multichip scaling ladder: serve an `aggregate_n →
/// aggregate_n/2` fabric at each chip count in `chip_counts`, each rung
/// as one thread-per-shard service (one Columnsort chip per shard,
/// shared compiled netlist) driven closed-loop by `producers` threads
/// submitting whole frames, then drained. `base_frames` generation
/// frames are offered at the first rung; later rungs scale frame count
/// with chip count so the total offered load is constant.
///
/// # Panics
/// If a rung's chip geometry is invalid: every `aggregate_n /
/// chip_count` must be divisible by `4 × CHIP_COLS` so the chip's
/// valid-bit matrix has `CHIP_COLS` columns dividing its row count.
pub fn ladder(
    aggregate_n: usize,
    chip_counts: &[usize],
    producers: usize,
    base_frames: usize,
    load: f64,
    payload_bytes: usize,
    seed: u64,
) -> ScalingLadder {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let points = chip_counts
        .iter()
        .map(|&chips| {
            let n = aggregate_n / chips;
            assert!(
                chips > 0 && n * chips == aggregate_n && n.is_multiple_of(CHIP_COLS * CHIP_COLS),
                "chip count {chips} does not divide aggregate {aggregate_n} into valid chips"
            );
            let m = n / 2;
            let switch = Arc::new(
                ColumnsortSwitch::new(n / CHIP_COLS, CHIP_COLS, m)
                    .staged()
                    .clone(),
            );
            let mut config = FabricConfig::new(chips);
            // Deep rings: the ladder measures serving throughput, not
            // backpressure policy.
            config.queue_capacity = (4 * n).max(1024);
            let plan = LoadPlan {
                model: TrafficModel::Bernoulli { p: load },
                payload_bytes,
                seed,
                frames: base_frames * chips,
            };
            let service = FabricService::start(Arc::clone(&switch), config);
            let started = Instant::now();
            let generated = drive_service_batched(&service, producers, &plan, n);
            let report = service.drain();
            let secs = started.elapsed().as_secs_f64();
            let totals = report.snapshot.totals();
            let per_shard = report
                .snapshot
                .shards
                .iter()
                .enumerate()
                .map(|(shard, s)| ShardScaling {
                    shard,
                    delivered: s.delivered,
                    msgs_per_sec: if secs > 0.0 {
                        s.delivered as f64 / secs
                    } else {
                        0.0
                    },
                    utilization: if s.frames > 0 {
                        s.delivered as f64 / (s.frames * m as u64) as f64
                    } else {
                        0.0
                    },
                })
                .collect();
            ScalingPoint {
                chips,
                threads: chips.min(cores),
                chip_inputs: n,
                chip_outputs: m,
                generated,
                delivered: totals.delivered,
                sweeps: totals.sweeps,
                frames: totals.frames,
                secs,
                per_shard,
            }
        })
        .collect();
    ScalingLadder {
        aggregate_n,
        points,
        cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature ladder must conserve the workload at every rung and
    /// produce coherent per-shard breakdowns.
    #[test]
    fn miniature_ladder_is_coherent() {
        let ladder = ladder(64, &[1, 2], 2, 2, 0.5, 2, 7);
        assert_eq!(ladder.points.len(), 2);
        for (i, point) in ladder.points.iter().enumerate() {
            assert_eq!(point.chips, [1, 2][i]);
            assert_eq!(point.chip_inputs, 64 / point.chips);
            assert_eq!(point.chip_outputs, point.chip_inputs / 2);
            assert_eq!(
                point.delivered, point.generated,
                "deep queues + blocking backpressure: lossless"
            );
            assert_eq!(point.per_shard.len(), point.chips);
            let summed: u64 = point.per_shard.iter().map(|s| s.delivered).sum();
            assert_eq!(summed, point.delivered);
            for shard in &point.per_shard {
                assert!((0.0..=1.0).contains(&shard.utilization));
            }
            assert!((0.0..=1.0).contains(&ladder.efficiency(i)) || i == 0);
            assert_eq!(point.threads, point.chips.min(ladder.cores));
            assert!(point.threads >= 1);
        }
        // Rung 0 is its own baseline under both normalizations.
        assert!((ladder.normalized_efficiency(0) - 1.0).abs() < 1e-12);
        // With every chip runnable in parallel the two ratios agree; the
        // normalized one is otherwise the raw one relieved of the
        // unachievable speedup, so it is never smaller.
        for i in 0..ladder.points.len() {
            assert!(ladder.normalized_efficiency(i) >= ladder.efficiency(i) - 1e-12);
        }
        // Both rungs offered the identical total workload.
        assert_eq!(ladder.points[0].generated, ladder.points[1].generated);
    }

    #[test]
    #[should_panic(expected = "valid chips")]
    fn invalid_chip_geometry_is_rejected() {
        ladder(64, &[3], 1, 1, 0.5, 2, 7);
    }
}
