//! Replayable workload traces: the serving stack's workload interchange
//! format (ROADMAP item 5).
//!
//! A trace is a sorted sequence of [`TraceRecord`]s — `(virtual arrival
//! tick, external source id, payload size class)` — plus a
//! [`SourceSpace`] declaring how source ids map onto switch input wires.
//! Everything else in the serving stack consumes traces through one of
//! two paths:
//!
//! * **Deterministic replay** — [`frames`] lowers a trace into
//!   per-tick message batches (ids are record indices, payloads are a
//!   pure hash of the id), so the same trace bytes always produce the
//!   same workload; [`drive_sync_trace`] plays it through the
//!   synchronous [`Fabric`] for bit-reproducible metrics.
//! * **Off-hot-path ingest** — a [`TraceCursor`] streams frames straight
//!   off a reader without materializing the trace, and a [`TraceFeeder`]
//!   moves that decode work onto a dedicated ingest thread behind a
//!   bounded pre-decoded ring (the corundum rx/tx-engine split: the
//!   serving hot loop only ever pops ready frames, it never touches the
//!   codec).
//!
//! Two on-disk flavors share the record model: a compact 17-byte-record
//! binary encoding (magic `CTRC`) and a JSON-lines interchange encoding.
//! Both are streaming (no record count in the header) and both fail with
//! typed [`TraceError`]s — truncation and corruption are diagnoses, not
//! panics.
//!
//! Traces come from three generator families ([`TraceModel`]) — diurnal
//! sinusoid, 2-state MMPP (the inline `Bursty` model is the degenerate
//! parameterization, see [`TraceModel::mmpp_from_bursty`]), and a
//! zipf-population over a multi-million-user id space — plus the
//! [`adversarial_trace`] bridge, which lowers
//! [`concentrator::search::epsilon_attack`]'s discovered worst-case
//! input subset into a replayable workload, closing the loop between
//! the paper's ε-nearsorting bounds and serving-tail p99.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::mpsc;

use concentrator::search::{epsilon_attack, SearchReport};
use concentrator::StagedSwitch;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use switchsim::traffic::mix64;
use switchsim::{Message, ZipfSampler};

use crate::engine::{Fabric, SubmitOutcome};
use crate::loadgen::DriveReport;

/// On-disk magic for the binary flavor (`CTRC` = Concentrator TRaCe).
pub const TRACE_MAGIC: [u8; 4] = *b"CTRC";
/// Binary format version this build reads and writes.
pub const TRACE_VERSION: u8 = 1;
/// Bytes per binary record: tick (u64 LE) + source (u64 LE) + class (u8).
pub const RECORD_BYTES: usize = 17;
/// Largest admissible size class (payload `1 << class` bytes ≤ 4 KiB).
pub const MAX_SIZE_CLASS: u8 = 12;

/// How a record's `source` id maps onto switch input wires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceSpace {
    /// Sources *are* wire indices (taken modulo the wire count). Used by
    /// the adversarial bridge so an attack pattern lands on exactly the
    /// wires the search discovered.
    Wire,
    /// Sources are external user ids over an arbitrarily large space,
    /// hashed onto wires with the same SplitMix64 finalizer as the
    /// inline zipf model; within a tick, later users landing on an
    /// occupied wire fold away (at most one offer per wire per tick).
    User,
}

impl SourceSpace {
    fn code(self) -> u8 {
        match self {
            SourceSpace::Wire => 0,
            SourceSpace::User => 1,
        }
    }

    fn from_code(code: u8) -> Result<Self, TraceError> {
        match code {
            0 => Ok(SourceSpace::Wire),
            1 => Ok(SourceSpace::User),
            other => Err(TraceError::BadSpace(other)),
        }
    }

    /// The space's wire-format label (`"wire"` / `"user"`), as written
    /// in JSONL headers and shown by the CLI.
    pub fn label(self) -> &'static str {
        match self {
            SourceSpace::Wire => "wire",
            SourceSpace::User => "user",
        }
    }

    fn from_label(label: &str) -> Result<Self, TraceError> {
        match label {
            "wire" => Ok(SourceSpace::Wire),
            "user" => Ok(SourceSpace::User),
            _ => Err(TraceError::BadSpace(u8::MAX)),
        }
    }
}

/// One trace event: source `source` offers one message of size class
/// `size_class` at virtual tick `tick`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual arrival tick (traces are sorted by this, ties allowed).
    pub tick: u64,
    /// External source id, interpreted per the trace's [`SourceSpace`].
    pub source: u64,
    /// Payload size class: the payload is `1 << size_class` bytes.
    pub size_class: u8,
}

impl TraceRecord {
    /// Payload size in bytes for this record's class.
    pub fn payload_bytes(&self) -> usize {
        1usize << self.size_class
    }
}

/// A fully materialized trace: a source space plus tick-sorted records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// How record sources map onto wires.
    pub space: SourceSpace,
    /// The events, sorted by `tick` (ties keep insertion order).
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Build a trace, checking the [`Trace::validate`] invariants.
    pub fn new(space: SourceSpace, records: Vec<TraceRecord>) -> Result<Self, TraceError> {
        let trace = Trace { space, records };
        trace.validate()?;
        Ok(trace)
    }

    /// Check the format invariants: records sorted by tick, every size
    /// class within [`MAX_SIZE_CLASS`].
    pub fn validate(&self) -> Result<(), TraceError> {
        for (index, record) in self.records.iter().enumerate() {
            if record.size_class > MAX_SIZE_CLASS {
                return Err(TraceError::BadSizeClass {
                    index,
                    class: record.size_class,
                });
            }
            if index > 0 && self.records[index - 1].tick > record.tick {
                return Err(TraceError::Unsorted { index });
            }
        }
        Ok(())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Virtual horizon: one past the last record's tick (0 when empty).
    pub fn ticks(&self) -> u64 {
        self.records.last().map_or(0, |r| r.tick + 1)
    }

    /// The prefix of the trace containing at most `limit` records — the
    /// shrinker's truncation knob.
    pub fn truncated(&self, limit: usize) -> Trace {
        Trace {
            space: self.space,
            records: self.records[..limit.min(self.records.len())].to_vec(),
        }
    }

    /// Realized offered load per wire per tick over `wires` inputs
    /// (records divided by the tick-horizon × wire count; an upper bound
    /// in `User` space, where collisions fold).
    pub fn offered_load(&self, wires: usize) -> f64 {
        let cells = self.ticks() as f64 * wires as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.records.len() as f64 / cells
        }
    }
}

/// Everything that can go wrong reading, writing, or validating a trace.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure (message carries the OS detail).
    Io(String),
    /// The file does not start with the `CTRC` magic (and is not JSONL).
    BadMagic,
    /// A binary header with a version this build does not speak.
    BadVersion(u8),
    /// An unknown source-space code or label.
    BadSpace(u8),
    /// The byte stream ends mid-record: `offset` bytes of a partial
    /// record were left over.
    Truncated {
        /// Bytes of the dangling partial record.
        offset: usize,
    },
    /// A JSONL line that does not parse as a record.
    Corrupt {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        detail: String,
    },
    /// Records out of tick order at `index`.
    Unsorted {
        /// Index of the first record earlier than its predecessor.
        index: usize,
    },
    /// A size class beyond [`MAX_SIZE_CLASS`].
    BadSizeClass {
        /// Index of the offending record.
        index: usize,
        /// The rejected class.
        class: u8,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(detail) => write!(f, "trace i/o error: {detail}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::BadSpace(code) => write!(f, "unknown source space code {code}"),
            TraceError::Truncated { offset } => {
                write!(f, "trace truncated mid-record ({offset} dangling bytes)")
            }
            TraceError::Corrupt { line, detail } => {
                write!(f, "corrupt trace at line {line}: {detail}")
            }
            TraceError::Unsorted { index } => {
                write!(f, "trace records out of tick order at index {index}")
            }
            TraceError::BadSizeClass { index, class } => {
                write!(
                    f,
                    "record {index} has size class {class} > {MAX_SIZE_CLASS}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(err: std::io::Error) -> Self {
        TraceError::Io(err.to_string())
    }
}

/// The two on-disk encodings of the one record model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFlavor {
    /// `CTRC` magic + version + space byte, then 17-byte LE records.
    Binary,
    /// A JSON header line then one JSON object per record — the
    /// interchange flavor (greppable, diffable, language-neutral).
    Jsonl,
}

/// Streaming trace encoder: writes the header up front, then records
/// one at a time, enforcing tick order as it goes.
pub struct TraceWriter<W: Write> {
    inner: W,
    flavor: TraceFlavor,
    written: usize,
    last_tick: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Start a trace of the given flavor and source space; the header is
    /// written immediately.
    pub fn new(mut inner: W, flavor: TraceFlavor, space: SourceSpace) -> Result<Self, TraceError> {
        match flavor {
            TraceFlavor::Binary => {
                inner.write_all(&TRACE_MAGIC)?;
                inner.write_all(&[TRACE_VERSION, space.code()])?;
            }
            TraceFlavor::Jsonl => {
                writeln!(
                    inner,
                    "{{\"format\":\"ctrc\",\"version\":{TRACE_VERSION},\"space\":\"{}\"}}",
                    space.label()
                )?;
            }
        }
        Ok(TraceWriter {
            inner,
            flavor,
            written: 0,
            last_tick: 0,
        })
    }

    /// Append one record; records must arrive in tick order.
    pub fn record(&mut self, record: TraceRecord) -> Result<(), TraceError> {
        if record.size_class > MAX_SIZE_CLASS {
            return Err(TraceError::BadSizeClass {
                index: self.written,
                class: record.size_class,
            });
        }
        if self.written > 0 && record.tick < self.last_tick {
            return Err(TraceError::Unsorted {
                index: self.written,
            });
        }
        match self.flavor {
            TraceFlavor::Binary => {
                let mut buf = [0u8; RECORD_BYTES];
                buf[0..8].copy_from_slice(&record.tick.to_le_bytes());
                buf[8..16].copy_from_slice(&record.source.to_le_bytes());
                buf[16] = record.size_class;
                self.inner.write_all(&buf)?;
            }
            TraceFlavor::Jsonl => {
                writeln!(
                    self.inner,
                    "{{\"tick\":{},\"source\":{},\"class\":{}}}",
                    record.tick, record.source, record.size_class
                )?;
            }
        }
        self.last_tick = record.tick;
        self.written += 1;
        Ok(())
    }

    /// Flush and hand the underlying writer back.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming trace decoder: sniffs the flavor from the first byte
/// (`{` ⇒ JSONL, anything else must be the binary magic) and yields
/// records one at a time without materializing the trace.
pub struct TraceReader<R: BufRead> {
    inner: R,
    flavor: TraceFlavor,
    space: SourceSpace,
    read: usize,
    last_tick: u64,
    line: usize,
}

impl<R: BufRead> TraceReader<R> {
    /// Open a trace stream: parse the header, remember the space.
    pub fn open(mut inner: R) -> Result<Self, TraceError> {
        let first = inner.fill_buf()?.first().copied();
        let (flavor, space, line) = match first {
            Some(b'{') => {
                let mut header = String::new();
                inner.read_line(&mut header)?;
                (TraceFlavor::Jsonl, parse_jsonl_header(&header)?, 1)
            }
            _ => {
                let mut header = [0u8; 6];
                inner.read_exact(&mut header).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::UnexpectedEof {
                        TraceError::BadMagic
                    } else {
                        TraceError::from(e)
                    }
                })?;
                if header[0..4] != TRACE_MAGIC {
                    return Err(TraceError::BadMagic);
                }
                if header[4] != TRACE_VERSION {
                    return Err(TraceError::BadVersion(header[4]));
                }
                (TraceFlavor::Binary, SourceSpace::from_code(header[5])?, 0)
            }
        };
        Ok(TraceReader {
            inner,
            flavor,
            space,
            read: 0,
            last_tick: 0,
            line,
        })
    }

    /// The source space declared in the header.
    pub fn space(&self) -> SourceSpace {
        self.space
    }

    /// The flavor that was sniffed.
    pub fn flavor(&self) -> TraceFlavor {
        self.flavor
    }

    /// Decode the next record, `Ok(None)` at a clean end of stream.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceError> {
        let record = match self.flavor {
            TraceFlavor::Binary => {
                let mut buf = [0u8; RECORD_BYTES];
                let mut filled = 0usize;
                while filled < RECORD_BYTES {
                    let n = self.inner.read(&mut buf[filled..])?;
                    if n == 0 {
                        break;
                    }
                    filled += n;
                }
                match filled {
                    0 => return Ok(None),
                    RECORD_BYTES => TraceRecord {
                        tick: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
                        source: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
                        size_class: buf[16],
                    },
                    offset => return Err(TraceError::Truncated { offset }),
                }
            }
            TraceFlavor::Jsonl => {
                let mut line = String::new();
                loop {
                    line.clear();
                    if self.inner.read_line(&mut line)? == 0 {
                        return Ok(None);
                    }
                    self.line += 1;
                    if !line.trim().is_empty() {
                        break;
                    }
                }
                parse_jsonl_record(&line, self.line)?
            }
        };
        if record.size_class > MAX_SIZE_CLASS {
            return Err(TraceError::BadSizeClass {
                index: self.read,
                class: record.size_class,
            });
        }
        if self.read > 0 && record.tick < self.last_tick {
            return Err(TraceError::Unsorted { index: self.read });
        }
        self.last_tick = record.tick;
        self.read += 1;
        Ok(Some(record))
    }

    /// Materialize the remaining records into a [`Trace`].
    pub fn collect_trace(mut self) -> Result<Trace, TraceError> {
        let mut records = Vec::new();
        while let Some(record) = self.next_record()? {
            records.push(record);
        }
        Ok(Trace {
            space: self.space,
            records,
        })
    }
}

/// Parse the JSONL header line. Hand-rolled (as is the record parser):
/// user ids span the full u64 range, and routing them through a
/// float-backed JSON value would silently round ids above 2⁵³.
fn parse_jsonl_header(line: &str) -> Result<SourceSpace, TraceError> {
    let corrupt = |detail: &str| TraceError::Corrupt {
        line: 1,
        detail: detail.to_string(),
    };
    if !line.contains("\"format\":\"ctrc\"") {
        return Err(TraceError::BadMagic);
    }
    let version =
        json_u64_field(line, "version").ok_or_else(|| corrupt("missing version field"))?;
    if version != TRACE_VERSION as u64 {
        return Err(TraceError::BadVersion(version.min(u8::MAX as u64) as u8));
    }
    let space = json_str_field(line, "space").ok_or_else(|| corrupt("missing space field"))?;
    SourceSpace::from_label(&space)
}

/// Parse one JSONL record line (`{"tick":T,"source":S,"class":C}`).
fn parse_jsonl_record(line: &str, line_no: usize) -> Result<TraceRecord, TraceError> {
    let corrupt = |detail: String| TraceError::Corrupt {
        line: line_no,
        detail,
    };
    let trimmed = line.trim();
    if !trimmed.starts_with('{') || !trimmed.ends_with('}') {
        return Err(corrupt(format!("not a JSON object: {trimmed:?}")));
    }
    let tick = json_u64_field(trimmed, "tick")
        .ok_or_else(|| corrupt("missing or non-integer tick".to_string()))?;
    let source = json_u64_field(trimmed, "source")
        .ok_or_else(|| corrupt("missing or non-integer source".to_string()))?;
    let class = json_u64_field(trimmed, "class")
        .ok_or_else(|| corrupt("missing or non-integer class".to_string()))?;
    if class > MAX_SIZE_CLASS as u64 {
        return Err(corrupt(format!("size class {class} > {MAX_SIZE_CLASS}")));
    }
    Ok(TraceRecord {
        tick,
        source,
        size_class: class as u8,
    })
}

/// Extract an unsigned integer field (`"key":123`) from a flat JSON
/// object, digit-exact (no float round trip).
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extract a string field (`"key":"value"`) from a flat JSON object.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Encode a whole trace to a writer in the given flavor.
pub fn write_trace<W: Write>(
    trace: &Trace,
    inner: W,
    flavor: TraceFlavor,
) -> Result<W, TraceError> {
    let mut writer = TraceWriter::new(inner, flavor, trace.space)?;
    for &record in &trace.records {
        writer.record(record)?;
    }
    writer.finish()
}

/// Serialize a trace to bytes in the given flavor.
pub fn encode(trace: &Trace, flavor: TraceFlavor) -> Vec<u8> {
    write_trace(trace, Vec::new(), flavor).expect("writing to a Vec cannot fail")
}

/// Decode a trace from bytes (flavor sniffed).
pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
    TraceReader::open(bytes)?.collect_trace()
}

/// Write a trace to a file in the given flavor.
pub fn save(trace: &Trace, path: &Path, flavor: TraceFlavor) -> Result<(), TraceError> {
    let file = std::fs::File::create(path)?;
    write_trace(trace, std::io::BufWriter::new(file), flavor)?;
    Ok(())
}

/// Read a trace from a file (flavor sniffed).
pub fn load(path: &Path) -> Result<Trace, TraceError> {
    let file = std::fs::File::open(path)?;
    TraceReader::open(BufReader::new(file))?.collect_trace()
}

/// FNV-1a over a byte stream: the golden-trace checksum (stable, no
/// dependency, easy to recompute from any language).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A workload model that *emits traces* (contrast
/// [`switchsim::TrafficModel`], which draws inline). All models are
/// pure functions of `(model, sources, ticks, seed)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceModel {
    /// Each source offers independently with probability `p` per tick —
    /// the memoryless baseline every other model is compared against.
    Bernoulli {
        /// Offer probability per source per tick.
        p: f64,
    },
    /// A sinusoidal rate envelope over the virtual clock: the offer
    /// probability at tick `t` is
    /// `clamp(base + amplitude · sin(2πt / period), 0, 1)` — the
    /// day/night swing of a user-facing service.
    Diurnal {
        /// Mean offer probability (the long-run offered load).
        base: f64,
        /// Peak-to-mean swing.
        amplitude: f64,
        /// Ticks per full cycle.
        period: u64,
    },
    /// A 2-state Markov-modulated process per source: each tick the
    /// source's state chain steps (`on → off` w.p. `on_to_off`,
    /// `off → on` w.p. `off_to_on`), then the source offers with its
    /// state's emission rate. The inline `Bursty` model is the
    /// degenerate corner `rate_on = 1, rate_off = 0` — see
    /// [`TraceModel::mmpp_from_bursty`].
    Mmpp {
        /// Offer probability while *on*.
        rate_on: f64,
        /// Offer probability while *off*.
        rate_off: f64,
        /// Per-tick probability of leaving *on*.
        on_to_off: f64,
        /// Per-tick probability of leaving *off*.
        off_to_on: f64,
    },
    /// A population of distinct users with zipf-distributed activity
    /// (reusing [`ZipfSampler`]): each tick draws `~p·sources` active
    /// users; records carry the *user rank* as the source id (the trace
    /// is in [`SourceSpace::User`]), and wire hashing + collision
    /// folding happen at replay time.
    ZipfPopulation {
        /// Target offered load per wire per tick (upper bound — wire
        /// collisions between users fold at replay).
        p: f64,
        /// Distinct users in the population.
        population: u64,
        /// Zipf exponent (`0` = uniform; larger = more skew).
        exponent: f64,
    },
}

impl TraceModel {
    /// The long-run offered load per source per tick.
    pub fn offered_load(&self) -> f64 {
        match *self {
            TraceModel::Bernoulli { p } => p,
            TraceModel::Diurnal { base, .. } => base,
            TraceModel::Mmpp {
                rate_on,
                rate_off,
                on_to_off,
                off_to_on,
            } => {
                // Stationary distribution of the 2-state chain.
                let denom = on_to_off + off_to_on;
                if denom == 0.0 {
                    // A frozen chain stays in its start state (off).
                    return rate_off;
                }
                let pi_on = off_to_on / denom;
                pi_on * rate_on + (1.0 - pi_on) * rate_off
            }
            TraceModel::ZipfPopulation { p, .. } => p,
        }
    }

    /// The source space traces of this model are emitted in.
    pub fn space(&self) -> SourceSpace {
        match self {
            TraceModel::ZipfPopulation { .. } => SourceSpace::User,
            _ => SourceSpace::Wire,
        }
    }

    /// The MMPP parameterization that degenerates to the inline
    /// `Bursty { p, mean_burst }` model: emission is all-or-nothing
    /// (`rate_on = 1, rate_off = 0`) and the chain's transition rates
    /// are Bursty's (`on → off` w.p. `1/mean_burst`; `off → on` chosen
    /// so the stationary on-fraction is `p`). Statistically equivalent,
    /// letting the old model read as a special case of this one.
    pub fn mmpp_from_bursty(p: f64, mean_burst: f64) -> TraceModel {
        let off_rate = 1.0 / mean_burst.max(1.0);
        let on_rate = if p >= 1.0 {
            1.0
        } else {
            (off_rate * p / (1.0 - p)).min(1.0)
        };
        TraceModel::Mmpp {
            rate_on: 1.0,
            rate_off: 0.0,
            on_to_off: off_rate,
            off_to_on: on_rate,
        }
    }
}

/// Generate a trace: play `model` over `sources` sources for `ticks`
/// virtual ticks, stamping every record with `size_class`. A pure
/// function of its arguments — same `(model, sources, ticks, seed)`,
/// same trace, byte for byte.
pub fn generate(model: TraceModel, sources: usize, ticks: u64, size_class: u8, seed: u64) -> Trace {
    assert!(size_class <= MAX_SIZE_CLASS, "size class out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    match model {
        TraceModel::Bernoulli { p } => {
            assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
            for tick in 0..ticks {
                for source in 0..sources as u64 {
                    if rng.random_bool(p) {
                        records.push(TraceRecord {
                            tick,
                            source,
                            size_class,
                        });
                    }
                }
            }
        }
        TraceModel::Diurnal {
            base,
            amplitude,
            period,
        } => {
            assert!(period > 0, "diurnal period must be positive");
            for tick in 0..ticks {
                let phase = std::f64::consts::TAU * (tick % period) as f64 / period as f64;
                let p = (base + amplitude * phase.sin()).clamp(0.0, 1.0);
                for source in 0..sources as u64 {
                    if rng.random_bool(p) {
                        records.push(TraceRecord {
                            tick,
                            source,
                            size_class,
                        });
                    }
                }
            }
        }
        TraceModel::Mmpp {
            rate_on,
            rate_off,
            on_to_off,
            off_to_on,
        } => {
            let unit = 0.0..=1.0;
            assert!(
                unit.contains(&rate_on)
                    && unit.contains(&rate_off)
                    && unit.contains(&on_to_off)
                    && unit.contains(&off_to_on),
                "mmpp parameters must be probabilities"
            );
            let mut on = vec![false; sources];
            for tick in 0..ticks {
                for (source, state) in on.iter_mut().enumerate() {
                    // Step the chain, then emit at the new state's rate —
                    // the same order as the inline Bursty source, so the
                    // degenerate parameterization matches its law exactly.
                    if *state {
                        if rng.random_bool(on_to_off) {
                            *state = false;
                        }
                    } else if rng.random_bool(off_to_on) {
                        *state = true;
                    }
                    let rate = if *state { rate_on } else { rate_off };
                    if rate > 0.0 && rng.random_bool(rate) {
                        records.push(TraceRecord {
                            tick,
                            source: source as u64,
                            size_class,
                        });
                    }
                }
            }
        }
        TraceModel::ZipfPopulation {
            p,
            population,
            exponent,
        } => {
            assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
            let sampler = ZipfSampler::new(population, exponent);
            for tick in 0..ticks {
                for _ in 0..sources {
                    if !rng.random_bool(p) {
                        continue;
                    }
                    let user = sampler.sample(&mut rng);
                    records.push(TraceRecord {
                        tick,
                        source: user,
                        size_class,
                    });
                }
            }
        }
    }
    Trace {
        space: model.space(),
        records,
    }
}

/// Parameters for the [`adversarial_trace`] bridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversarialPlan {
    /// Hill-climb restarts handed to `epsilon_attack` (each sweeps a
    /// different initial density).
    pub restarts: usize,
    /// Climb rounds per restart.
    pub rounds: usize,
    /// Search seed.
    pub seed: u64,
    /// Ticks to sustain the discovered pattern for.
    pub ticks: u64,
    /// Size class stamped on every record.
    pub size_class: u8,
}

/// Run [`epsilon_attack`] against `switch` and lower the discovered
/// worst-case input subset into a trace: the winning pattern's wires
/// each offer once per tick for `plan.ticks` ticks ([`SourceSpace::Wire`],
/// so the offers land on exactly the wires the search found). Returns
/// the trace and the search report (score = the ε-deficiency achieved).
pub fn adversarial_trace(switch: &StagedSwitch, plan: &AdversarialPlan) -> (Trace, SearchReport) {
    assert!(plan.size_class <= MAX_SIZE_CLASS, "size class out of range");
    let report = epsilon_attack(switch, plan.restarts, plan.rounds, plan.seed);
    let mut records = Vec::new();
    for tick in 0..plan.ticks {
        for (wire, &hot) in report.best_pattern.iter().enumerate() {
            if hot {
                records.push(TraceRecord {
                    tick,
                    source: wire as u64,
                    size_class: plan.size_class,
                });
            }
        }
    }
    (
        Trace {
            space: SourceSpace::Wire,
            records,
        },
        report,
    )
}

// ---------------------------------------------------------------------------
// Replay: records → message frames
// ---------------------------------------------------------------------------

/// Salt folded into the payload hash stream so payload bytes and wire
/// hashes never correlate.
const PAYLOAD_SALT: u64 = 0xC0DE_57AC_E000_0001;

/// The deterministic payload for message id `id`: a SplitMix64 byte
/// stream keyed on the id, so replaying a trace regenerates identical
/// payload bits without storing them.
pub fn payload_for(id: u64, bytes: usize) -> Vec<u8> {
    let mut z = id ^ PAYLOAD_SALT;
    (0..bytes)
        .map(|_| {
            z = mix64(z);
            z as u8
        })
        .collect()
}

/// Lower one record into its message. `index` is the record's position
/// in the trace and becomes the message id; the wire mapping follows
/// the trace's source space.
fn lower_record(record: &TraceRecord, space: SourceSpace, wires: usize, index: u64) -> Message {
    let wire = match space {
        SourceSpace::Wire => (record.source % wires.max(1) as u64) as usize,
        SourceSpace::User => (mix64(record.source) >> 32) as usize % wires.max(1),
    };
    Message::new(index, wire, payload_for(index, record.payload_bytes()))
}

/// Lower a trace into per-tick message frames over `wires` input wires:
/// element `(tick, batch)` carries every surviving record of that tick
/// (ticks with no records are omitted). Message ids are record indices
/// and payloads come from [`payload_for`], so frames are a pure
/// function of the trace bytes. In [`SourceSpace::User`] traces, later
/// users hashing onto an occupied wire within one tick fold away,
/// mirroring the inline zipf model's at-most-one-offer-per-wire rule.
pub fn frames(trace: &Trace, wires: usize) -> Vec<(u64, Vec<Message>)> {
    let bytes = encode(trace, TraceFlavor::Binary);
    let mut cursor = TraceCursor::new(
        TraceReader::open(std::io::Cursor::new(bytes)).expect("in-memory encode round-trips"),
        wires,
    );
    let mut out = Vec::new();
    while let Some(frame) = cursor.next_frame().expect("in-memory trace is well-formed") {
        out.push(frame);
    }
    out
}

/// Streaming frame assembler: pulls records off a [`TraceReader`] and
/// groups them into per-tick batches without ever holding more than one
/// tick's worth of decoded state. This is the decode side of the
/// ingest split — it runs on the feeder thread, not the serving loop.
pub struct TraceCursor<R: BufRead> {
    reader: TraceReader<R>,
    wires: usize,
    /// A record already pulled that belongs to the *next* tick.
    lookahead: Option<TraceRecord>,
    next_id: u64,
    done: bool,
}

impl<R: BufRead> TraceCursor<R> {
    /// Wrap an opened reader; frames will target `wires` input wires.
    pub fn new(reader: TraceReader<R>, wires: usize) -> Self {
        TraceCursor {
            reader,
            wires,
            lookahead: None,
            next_id: 0,
            done: false,
        }
    }

    /// The source space of the underlying trace.
    pub fn space(&self) -> SourceSpace {
        self.reader.space()
    }

    /// Assemble the next tick's frame: `Ok(None)` at end of trace.
    pub fn next_frame(&mut self) -> Result<Option<(u64, Vec<Message>)>, TraceError> {
        if self.done && self.lookahead.is_none() {
            return Ok(None);
        }
        let first = match self.lookahead.take() {
            Some(record) => record,
            None => match self.reader.next_record()? {
                Some(record) => record,
                None => {
                    self.done = true;
                    return Ok(None);
                }
            },
        };
        let space = self.reader.space();
        let tick = first.tick;
        let mut taken = vec![
            false;
            if space == SourceSpace::User {
                self.wires
            } else {
                0
            }
        ];
        let mut batch = Vec::new();
        let mut push = |record: TraceRecord, next_id: &mut u64, batch: &mut Vec<Message>| {
            // User-space collisions fold (at most one offer per wire per
            // tick); folded records still consume an id so message ids
            // stay equal to record indices either way.
            let index = *next_id;
            *next_id += 1;
            let message = lower_record(&record, space, self.wires, index);
            if space == SourceSpace::User {
                if taken[message.source] {
                    return;
                }
                taken[message.source] = true;
            }
            batch.push(message);
        };
        push(first, &mut self.next_id, &mut batch);
        loop {
            match self.reader.next_record()? {
                Some(record) if record.tick == tick => push(record, &mut self.next_id, &mut batch),
                Some(record) => {
                    self.lookahead = Some(record);
                    break;
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        Ok(Some((tick, batch)))
    }
}

/// The pre-decoded frame ring: a dedicated ingest thread runs the
/// [`TraceCursor`] and pushes ready frames into a bounded channel; the
/// serving hot loop only ever pops. Decode stalls backpressure the
/// feeder, never the fabric.
pub struct TraceFeeder {
    rx: mpsc::Receiver<(u64, Vec<Message>)>,
    handle: std::thread::JoinHandle<Result<u64, TraceError>>,
}

impl TraceFeeder {
    /// Spawn the ingest worker over `cursor` with a ring of `depth`
    /// pre-decoded frames.
    pub fn start<R>(mut cursor: TraceCursor<R>, depth: usize) -> TraceFeeder
    where
        R: BufRead + Send + 'static,
    {
        let (tx, rx) = mpsc::sync_channel(depth.max(1));
        let handle = std::thread::spawn(move || {
            let mut fed = 0u64;
            while let Some(frame) = cursor.next_frame()? {
                fed += frame.1.len() as u64;
                if tx.send(frame).is_err() {
                    // Consumer dropped the ring mid-trace: stop decoding.
                    break;
                }
            }
            Ok(fed)
        });
        TraceFeeder { rx, handle }
    }

    /// Pop the next ready frame; `None` once the trace is exhausted (or
    /// the ingest worker failed — [`TraceFeeder::join`] reports which).
    pub fn next_frame(&self) -> Option<(u64, Vec<Message>)> {
        self.rx.recv().ok()
    }

    /// Join the ingest worker; returns the number of messages it fed.
    pub fn join(self) -> Result<u64, TraceError> {
        drop(self.rx);
        self.handle
            .join()
            .unwrap_or_else(|_| Err(TraceError::Io("ingest worker panicked".to_string())))
    }
}

// ---------------------------------------------------------------------------
// Drives
// ---------------------------------------------------------------------------

/// Frames the drain phase may take before the harness gives up.
const DRAIN_LIMIT: u64 = 1 << 22;

/// Replay a trace through the synchronous [`Fabric`], tick-faithfully:
/// the fabric ticks through arrival gaps (held-back messages keep
/// re-offering), each trace tick's batch is offered at its virtual
/// time, and the run drains to completion. Bit-deterministic: same
/// trace, same config ⇒ identical snapshot.
pub fn drive_sync_trace(fabric: &mut Fabric, wires: usize, trace: &Trace) -> DriveReport {
    let mut held: Vec<Message> = Vec::new();
    let mut generated = 0u64;
    let mut now = 0u64;
    for (tick, batch) in frames(trace, wires) {
        // Advance virtual time to the batch's arrival tick. An idle
        // fabric with nothing held skips ahead; otherwise in-flight
        // work (and the held backlog) get their gap ticks.
        while now < tick {
            if held.is_empty() && fabric.in_flight() == 0 {
                now = tick;
                break;
            }
            held = offer_all(fabric, held.into_iter());
            fabric.tick();
            now += 1;
        }
        generated += batch.len() as u64;
        held = offer_all(fabric, held.into_iter().chain(batch));
        fabric.tick();
        now += 1;
    }
    let mut drain_frames = 0u64;
    while !held.is_empty() || fabric.in_flight() > 0 {
        assert!(
            drain_frames < DRAIN_LIMIT,
            "trace drive failed to drain (held {})",
            held.len()
        );
        held = offer_all(fabric, held.into_iter());
        fabric.tick();
        drain_frames += 1;
    }
    let delivered = fabric.take_completions().len() as u64;
    DriveReport {
        generated,
        delivered,
        snapshot: fabric.snapshot(),
    }
}

fn offer_all(fabric: &mut Fabric, messages: impl Iterator<Item = Message>) -> Vec<Message> {
    let mut held = Vec::new();
    for message in messages {
        if let SubmitOutcome::Backpressured(back) = fabric.submit(message) {
            held.push(back);
        }
    }
    held
}

/// Replay a trace through a live [`crate::FabricService`] via the
/// off-hot-path ingest ring: the feeder thread decodes, the calling
/// thread only pops frames and submits batches. Returns messages
/// submitted; call [`crate::FabricService::drain`] for the ledger.
pub fn drive_service_trace(
    service: &crate::FabricService,
    feeder: TraceFeeder,
) -> Result<u64, TraceError> {
    let mut generated = 0u64;
    while let Some((_tick, batch)) = feeder.next_frame() {
        generated += batch.len() as u64;
        service.submit_batch(batch);
    }
    feeder.join()?;
    Ok(generated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;
    use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
    use std::sync::Arc;
    use switchsim::traffic::{TrafficGenerator, TrafficModel};

    fn sample_trace() -> Trace {
        generate(TraceModel::Bernoulli { p: 0.5 }, 8, 16, 1, 42)
    }

    fn test_switch() -> Arc<StagedSwitch> {
        Arc::new(
            RevsortSwitch::new(16, 8, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        )
    }

    #[test]
    fn binary_round_trip_is_byte_identical() {
        let trace = sample_trace();
        let bytes = encode(&trace, TraceFlavor::Binary);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(encode(&decoded, TraceFlavor::Binary), bytes);
    }

    #[test]
    fn jsonl_round_trip_is_byte_identical() {
        let trace = sample_trace();
        let bytes = encode(&trace, TraceFlavor::Jsonl);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(encode(&decoded, TraceFlavor::Jsonl), bytes);
    }

    #[test]
    fn user_space_survives_both_flavors() {
        let trace = generate(
            TraceModel::ZipfPopulation {
                p: 0.5,
                population: 3_000_000,
                exponent: 1.1,
            },
            8,
            8,
            0,
            9,
        );
        assert_eq!(trace.space, SourceSpace::User);
        for flavor in [TraceFlavor::Binary, TraceFlavor::Jsonl] {
            let decoded = decode(&encode(&trace, flavor)).unwrap();
            assert_eq!(decoded, trace);
        }
    }

    #[test]
    fn truncated_binary_is_a_typed_error() {
        let trace = sample_trace();
        let mut bytes = encode(&trace, TraceFlavor::Binary);
        bytes.truncate(bytes.len() - 5);
        match decode(&bytes) {
            Err(TraceError::Truncated { offset }) => assert_eq!(offset, RECORD_BYTES - 5),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_jsonl_is_a_typed_error() {
        let trace = sample_trace();
        let text = String::from_utf8(encode(&trace, TraceFlavor::Jsonl)).unwrap();
        let mangled = text.replacen("\"tick\":", "\"tock\":", 2);
        match decode(mangled.as_bytes()) {
            // Line 1 is the header; the first mangled record is line 2.
            Err(TraceError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_version_and_space_are_typed() {
        assert!(matches!(decode(b"NOPE"), Err(TraceError::BadMagic)));
        assert!(matches!(decode(b"CT"), Err(TraceError::BadMagic)));
        let mut bytes = encode(&sample_trace(), TraceFlavor::Binary);
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(TraceError::BadVersion(99))));
        bytes[4] = TRACE_VERSION;
        bytes[5] = 7;
        assert!(matches!(decode(&bytes), Err(TraceError::BadSpace(7))));
    }

    #[test]
    fn unsorted_records_are_rejected_on_write_and_read() {
        let records = vec![
            TraceRecord {
                tick: 5,
                source: 0,
                size_class: 0,
            },
            TraceRecord {
                tick: 3,
                source: 1,
                size_class: 0,
            },
        ];
        assert!(matches!(
            Trace::new(SourceSpace::Wire, records.clone()),
            Err(TraceError::Unsorted { index: 1 })
        ));
        let mut writer =
            TraceWriter::new(Vec::new(), TraceFlavor::Binary, SourceSpace::Wire).unwrap();
        writer.record(records[0]).unwrap();
        assert!(matches!(
            writer.record(records[1]),
            Err(TraceError::Unsorted { index: 1 })
        ));
        // Forge an unsorted byte stream and make the reader catch it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&[TRACE_VERSION, 0]);
        for r in &records {
            bytes.extend_from_slice(&r.tick.to_le_bytes());
            bytes.extend_from_slice(&r.source.to_le_bytes());
            bytes.push(r.size_class);
        }
        assert!(matches!(
            decode(&bytes),
            Err(TraceError::Unsorted { index: 1 })
        ));
    }

    #[test]
    fn generation_is_deterministic() {
        let models = [
            TraceModel::Bernoulli { p: 0.4 },
            TraceModel::Diurnal {
                base: 0.4,
                amplitude: 0.3,
                period: 32,
            },
            TraceModel::mmpp_from_bursty(0.4, 8.0),
            TraceModel::ZipfPopulation {
                p: 0.4,
                population: 1 << 21,
                exponent: 1.2,
            },
        ];
        for model in models {
            let a = generate(model, 16, 64, 1, 7);
            let b = generate(model, 16, 64, 1, 7);
            assert_eq!(a, b, "{model:?} not deterministic");
            assert_eq!(
                encode(&a, TraceFlavor::Binary),
                encode(&b, TraceFlavor::Binary)
            );
        }
    }

    #[test]
    fn mmpp_long_run_load_matches_stationary_rate() {
        let model = TraceModel::Mmpp {
            rate_on: 0.9,
            rate_off: 0.1,
            on_to_off: 0.125,
            off_to_on: 0.125,
        };
        // π_on = 0.5 ⇒ load = 0.5·0.9 + 0.5·0.1 = 0.5.
        assert!((model.offered_load() - 0.5).abs() < 1e-12);
        let trace = generate(model, 64, 3000, 0, 11);
        let load = trace.records.len() as f64 / (3000.0 * 64.0);
        assert!(
            (load - 0.5).abs() < 0.05,
            "mmpp measured load {load}, want 0.5"
        );
    }

    #[test]
    fn mmpp_degenerate_matches_inline_bursty_load() {
        // The PR 2 load-pinning bounds: Bursty at p = 0.4, mean burst 8,
        // over 3000 frames × 64 inputs, within ±0.05. The degenerate
        // MMPP must land in the same band — the equivalence that lets
        // Bursty be documented as a special case instead of a parallel
        // code path.
        let frames = 3000;
        let sources = 64;
        let mut inline = TrafficGenerator::new(
            TrafficModel::Bursty {
                p: 0.4,
                mean_burst: 8.0,
            },
            sources,
            2,
            7,
        );
        let inline_total: usize = (0..frames).map(|_| inline.next_frame().len()).sum();
        let inline_load = inline_total as f64 / (frames * sources) as f64;

        let model = TraceModel::mmpp_from_bursty(0.4, 8.0);
        assert!((model.offered_load() - 0.4).abs() < 1e-9);
        let trace = generate(model, sources, frames as u64, 1, 7);
        let mmpp_load = trace.records.len() as f64 / (frames * sources) as f64;

        assert!(
            (inline_load - 0.4).abs() < 0.05,
            "inline bursty load {inline_load}"
        );
        assert!((mmpp_load - 0.4).abs() < 0.05, "mmpp load {mmpp_load}");
    }

    #[test]
    fn diurnal_mean_load_tracks_base_and_oscillates() {
        let trace = generate(
            TraceModel::Diurnal {
                base: 0.5,
                amplitude: 0.4,
                period: 64,
            },
            64,
            1024,
            0,
            3,
        );
        let load = trace.records.len() as f64 / (1024.0 * 64.0);
        assert!((load - 0.5).abs() < 0.05, "diurnal mean load {load}");
        // The envelope actually swings: peak-phase ticks carry more
        // offers than trough-phase ticks.
        let mut per_tick = vec![0usize; 1024];
        for r in &trace.records {
            per_tick[r.tick as usize] += 1;
        }
        let peak: usize = per_tick.iter().skip(8).step_by(64).sum();
        let trough: usize = per_tick.iter().skip(40).step_by(64).sum();
        assert!(
            peak > trough * 2,
            "no diurnal swing: peak {peak}, trough {trough}"
        );
    }

    #[test]
    fn adversarial_bridge_lowers_the_attack_pattern() {
        let switch = test_switch();
        let plan = AdversarialPlan {
            restarts: 2,
            rounds: 12,
            seed: 5,
            ticks: 4,
            size_class: 0,
        };
        let (trace, report) = adversarial_trace(&switch, &plan);
        let hot = report.best_pattern.iter().filter(|&&b| b).count();
        assert!(hot > 0, "attack found no pattern");
        assert_eq!(trace.space, SourceSpace::Wire);
        assert_eq!(trace.records.len(), hot * 4);
        // Every tick offers exactly the discovered subset.
        for tick in 0..4u64 {
            let wires: Vec<u64> = trace
                .records
                .iter()
                .filter(|r| r.tick == tick)
                .map(|r| r.source)
                .collect();
            let expected: Vec<u64> = report
                .best_pattern
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(w, _)| w as u64)
                .collect();
            assert_eq!(wires, expected);
        }
    }

    #[test]
    fn cursor_streams_the_same_frames_as_materialization() {
        let trace = generate(
            TraceModel::ZipfPopulation {
                p: 0.6,
                population: 1 << 20,
                exponent: 1.1,
            },
            16,
            32,
            1,
            21,
        );
        let materialized = frames(&trace, 16);
        let bytes = encode(&trace, TraceFlavor::Jsonl);
        let mut cursor = TraceCursor::new(TraceReader::open(bytes.as_slice()).unwrap(), 16);
        let mut streamed = Vec::new();
        while let Some(frame) = cursor.next_frame().unwrap() {
            streamed.push(frame);
        }
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn feeder_ring_delivers_every_frame_in_order() {
        let trace = sample_trace();
        let expected = frames(&trace, 8);
        let bytes = encode(&trace, TraceFlavor::Binary);
        let cursor = TraceCursor::new(TraceReader::open(std::io::Cursor::new(bytes)).unwrap(), 8);
        let feeder = TraceFeeder::start(cursor, 2);
        let mut got = Vec::new();
        while let Some(frame) = feeder.next_frame() {
            got.push(frame);
        }
        let fed = feeder.join().unwrap();
        assert_eq!(got, expected);
        assert_eq!(
            fed,
            expected.iter().map(|(_, b)| b.len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn sync_trace_drive_conserves_and_replays_bit_identically() {
        let trace = generate(TraceModel::mmpp_from_bursty(0.5, 6.0), 16, 48, 1, 77);
        let switch = test_switch();
        let run = |tr: &Trace| {
            let mut fabric = Fabric::new(Arc::clone(&switch), FabricConfig::new(2));
            drive_sync_trace(&mut fabric, 16, tr)
        };
        let a = run(&trace);
        let b = run(&trace);
        assert!(a.generated > 0);
        assert!(a.snapshot.conserved());
        assert_eq!(a.snapshot.in_flight, 0);
        assert_eq!(a.delivered, a.generated);
        assert_eq!(a, b, "trace replay must be bit-identical");
        // And through the codec: decode(encode(trace)) drives the same.
        let decoded = decode(&encode(&trace, TraceFlavor::Binary)).unwrap();
        assert_eq!(run(&decoded), a);
    }

    #[test]
    fn truncated_trace_is_a_prefix() {
        let trace = sample_trace();
        let cut = trace.truncated(5);
        assert_eq!(cut.records[..], trace.records[..5]);
        assert_eq!(cut.space, trace.space);
        assert!(trace.truncated(usize::MAX).records.len() == trace.len());
    }

    #[test]
    fn fnv1a_is_the_reference_vector() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
