//! The threaded fabric service: shard workers behind bounded MPSC
//! ingress queues.
//!
//! [`FabricService`] spawns one worker thread per shard. Producers call
//! [`FabricService::submit`] from any thread; placement and admission
//! control run on the producer's thread, then the message lands in the
//! target shard's [`IngressQueue`] under the configured backpressure
//! policy (a blocked producer really blocks). Each worker pulls fresh
//! messages, packs them with its retry backlog into batched routing
//! frames, and runs the compiled-datapath executor ([`Shard`]).
//! [`FabricService::drain`] closes every queue, lets the workers finish
//! their backlogs, joins them, and returns the merged report.
//!
//! The service is split along a scheduler seam. All of its logic lives in
//! two plain structs that never block or spawn:
//!
//! * [`ServiceCore`] — the shared producer-side state (queues, placement
//!   cursor, in-flight gauge, admission counters, fault signals,
//!   quarantine flags) with step-wise submission
//!   ([`ServiceCore::try_submit`] / [`ServiceCore::retry_submit`]);
//! * [`WorkerCore`] — one shard's serving loop body as a single-step
//!   state machine ([`WorkerCore::step`]).
//!
//! The threaded service is a thin shell: each worker thread loops
//! [`WorkerCore::step_blocking`], and `submit` is
//! [`ServiceCore::submit_blocking`]. The deterministic simulation
//! harness drives the *same* cores through the non-blocking entry points
//! under a seeded scheduler, so every interleaving the simulator explores
//! is an interleaving the threaded service could exhibit.
//!
//! Frame composition under real threads depends on OS scheduling, so
//! per-run counters are *not* bit-reproducible — that is what the
//! synchronous [`Fabric`](crate::Fabric) is for. What the service does
//! guarantee (and the tests pin) is conservation — every offered message
//! is delivered, rejected, shed, or retry-dropped by drain — and payload
//! integrity end to end.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use concentrator::faults::ChipFault;
use concentrator::StagedSwitch;
use switchsim::Message;

use crate::config::{steer_scan, FabricConfig};
use crate::engine::SubmitOutcome;
use crate::metrics::{FabricSnapshot, ShardMetrics};
use crate::queue::{IngressQueue, PushOutcome, TryPush};
use crate::shard::{Delivery, FrameRun, Shard};

/// Frames a worker may spend clearing its backlog after close before the
/// service declares the switch unable to drain.
const DRAIN_FRAME_LIMIT: u64 = 1 << 22;

struct WorkerResult {
    metrics: ShardMetrics,
    deliveries: Vec<Delivery>,
}

/// The merged outcome of a service run, produced by
/// [`FabricService::drain`].
#[derive(Debug, Clone)]
pub struct FabricReport {
    /// Per-shard metrics (queue-side counters folded in); `in_flight` is
    /// zero — drain completes the backlog.
    pub snapshot: FabricSnapshot,
    /// Every delivery, grouped by shard in shard order.
    pub completions: Vec<Delivery>,
}

/// A pending fault-set change for one shard's worker: `None` means no
/// change requested; `Some(faults)` is applied (and taken) at the
/// worker's next step.
type FaultSignal = Arc<Mutex<Option<Vec<ChipFault>>>>;

/// What one non-blocking submission step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitStep {
    /// The submission resolved.
    Done(SubmitOutcome),
    /// The chosen shard's queue is full under blocking backpressure: the
    /// message is handed back with its placement. A threaded producer
    /// waits on the queue's condvar; a simulated producer parks until
    /// [`ServiceCore::queue`]`(shard).would_accept(..)` and then calls
    /// [`ServiceCore::retry_submit`] — placement and admission are *not*
    /// re-run, exactly like the blocked thread.
    Blocked {
        /// The handed-back message.
        message: Message,
        /// The shard placement already chose.
        shard: usize,
    },
}

/// The producer-facing half of the service, with no threads inside: the
/// shared state every submitter and worker touches, exposed as single
/// non-blocking steps so a cooperative scheduler can own the interleaving.
pub struct ServiceCore {
    config: FabricConfig,
    queues: Vec<Arc<IngressQueue>>,
    rr_cursor: AtomicUsize,
    in_flight: Arc<AtomicU64>,
    admission_rejected: Vec<AtomicU64>,
    fault_signals: Vec<FaultSignal>,
    quarantined: Vec<Arc<AtomicBool>>,
}

impl ServiceCore {
    /// Build the shared state for `config.shards` shards.
    ///
    /// # Panics
    /// If the configuration is invalid (see [`FabricConfig::validate`]).
    pub fn new(config: FabricConfig) -> ServiceCore {
        config.validate();
        ServiceCore {
            config,
            queues: (0..config.shards)
                .map(|_| Arc::new(IngressQueue::new(config.queue_capacity)))
                .collect(),
            rr_cursor: AtomicUsize::new(0),
            in_flight: Arc::new(AtomicU64::new(0)),
            admission_rejected: (0..config.shards).map(|_| AtomicU64::new(0)).collect(),
            fault_signals: (0..config.shards).map(|_| FaultSignal::default()).collect(),
            quarantined: (0..config.shards)
                .map(|_| Arc::new(AtomicBool::new(false)))
                .collect(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Shard `id`'s serving loop as a steppable state machine over the
    /// shared `switch`. Call once per shard; each worker owns its core.
    pub fn worker(&self, id: usize, switch: Arc<StagedSwitch>) -> WorkerCore {
        let batch_window = switch.n.max(1);
        let shard =
            Shard::new(id, switch, self.config.retry).with_health_policy(self.config.health);
        WorkerCore {
            shard,
            queue: Arc::clone(&self.queues[id]),
            in_flight: Arc::clone(&self.in_flight),
            batch_window,
            fault_signal: Arc::clone(&self.fault_signals[id]),
            quarantined: Arc::clone(&self.quarantined[id]),
            drain_frames: 0,
        }
    }

    /// Shard `shard`'s ingress queue (readiness checks, counters).
    pub fn queue(&self, shard: usize) -> &IngressQueue {
        &self.queues[shard]
    }

    /// Admission-control rejections charged to shard `shard` so far.
    pub fn admission_rejected(&self, shard: usize) -> u64 {
        self.admission_rejected[shard].load(Ordering::Relaxed)
    }

    /// Messages currently in flight (queued or pending in a shard).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Request chip faults on one shard's switch (an empty vector clears
    /// them). The shard's worker applies the change at its next step.
    pub fn inject_faults(&self, shard: usize, faults: Vec<ChipFault>) {
        *self.fault_signals[shard].lock().expect("fault signal") = Some(faults);
    }

    /// Whether a shard's health monitor has quarantined it (as last
    /// published by its worker).
    pub fn shard_quarantined(&self, shard: usize) -> bool {
        self.quarantined[shard].load(Ordering::Acquire)
    }

    /// Close every ingress queue: producers are refused from now on,
    /// workers drain their backlogs and then report
    /// [`WorkerStep::Done`].
    pub fn close(&self) {
        for queue in &self.queues {
            queue.close();
        }
    }

    /// Place a message and advance the round-robin cursor, steering away
    /// from quarantined shards via the shared [`steer_scan`].
    fn place(&self, source: usize) -> usize {
        let cursor = self.rr_cursor.fetch_add(1, Ordering::Relaxed);
        let preferred = self
            .config
            .placement
            .place(source, cursor, self.config.shards);
        steer_scan(preferred, self.config.shards, |idx| {
            self.quarantined[idx].load(Ordering::Acquire)
        })
    }

    /// One non-blocking submission step: placement, admission control,
    /// then a [`TryPush`] on the chosen queue.
    pub fn try_submit(&self, message: Message) -> SubmitStep {
        let shard = self.place(message.source);
        if let Some(limit) = self.config.admission_limit {
            if self.in_flight.load(Ordering::Acquire) >= limit as u64 {
                self.admission_rejected[shard].fetch_add(1, Ordering::Relaxed);
                return SubmitStep::Done(SubmitOutcome::Rejected);
            }
        }
        self.offer(message, shard)
    }

    /// Re-offer a message a previous step handed back as
    /// [`SubmitStep::Blocked`]. Skips placement and admission — the
    /// message already holds a slot on `shard`'s queue order, exactly as
    /// a producer blocked on the queue's condvar does.
    pub fn retry_submit(&self, message: Message, shard: usize) -> SubmitStep {
        self.offer(message, shard)
    }

    fn offer(&self, message: Message, shard: usize) -> SubmitStep {
        // Count the message in flight *before* it becomes poppable: a fast
        // worker could otherwise complete (and decrement) it first and wrap
        // the gauge below zero.
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        match self.queues[shard].try_push(message, self.config.backpressure) {
            TryPush::Enqueued => SubmitStep::Done(SubmitOutcome::Accepted),
            // A shed swaps one queued message for another that will never
            // complete: net in-flight change is zero, so undo our add.
            TryPush::EnqueuedAfterShed => {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                SubmitStep::Done(SubmitOutcome::AcceptedAfterShed)
            }
            TryPush::Rejected => {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                SubmitStep::Done(SubmitOutcome::Rejected)
            }
            TryPush::WouldBlock(message) => {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                SubmitStep::Blocked { message, shard }
            }
        }
    }

    /// Submit one routing request, blocking while the target queue is
    /// full under [`Backpressure::Block`](crate::Backpressure). The
    /// threaded service's `submit`.
    pub fn submit_blocking(&self, message: Message) -> SubmitOutcome {
        match self.try_submit(message) {
            SubmitStep::Done(outcome) => outcome,
            SubmitStep::Blocked { message, shard } => {
                self.in_flight.fetch_add(1, Ordering::AcqRel);
                match self.queues[shard].push(message, self.config.backpressure) {
                    PushOutcome::Enqueued => SubmitOutcome::Accepted,
                    PushOutcome::EnqueuedAfterShed => {
                        self.in_flight.fetch_sub(1, Ordering::AcqRel);
                        SubmitOutcome::AcceptedAfterShed
                    }
                    PushOutcome::Rejected => {
                        self.in_flight.fetch_sub(1, Ordering::AcqRel);
                        SubmitOutcome::Rejected
                    }
                }
            }
        }
    }

    /// Fold shard `shard`'s queue-side counters (and admission
    /// rejections) into `metrics` — the drain-time merge.
    pub fn fold_queue_counters(&self, shard: usize, metrics: &mut ShardMetrics) {
        let (offered, rejected, shed) = self.queues[shard].counters();
        let admission = self.admission_rejected[shard].load(Ordering::Relaxed);
        metrics.offered += offered + admission;
        metrics.rejected += rejected + admission;
        metrics.shed += shed;
    }
}

/// What one worker step did.
#[derive(Debug)]
pub enum WorkerStep {
    /// Executed one batched routing frame.
    Frame(FrameRun),
    /// Nothing to do right now (queue empty, nothing pending). A
    /// simulated worker is re-stepped when work arrives; a threaded one
    /// never sees this (it blocks instead).
    Idle,
    /// Queue closed and drained, backlog empty: the worker is finished.
    Done,
}

/// One shard's serving loop as a single-step state machine: apply any
/// pending fault signal, pull fresh messages, run one batched frame,
/// publish quarantine state, and account completed work against the
/// global in-flight gauge.
pub struct WorkerCore {
    shard: Shard,
    queue: Arc<IngressQueue>,
    in_flight: Arc<AtomicU64>,
    batch_window: usize,
    fault_signal: FaultSignal,
    quarantined: Arc<AtomicBool>,
    drain_frames: u64,
}

impl WorkerCore {
    /// The shard this core serves (metrics, health, pending state).
    pub fn shard(&self) -> &Shard {
        &self.shard
    }

    /// Whether a step right now would make progress: a fault signal is
    /// pending, messages are queued or pending, or close has been
    /// requested (so the step would resolve to [`WorkerStep::Done`]).
    /// The simulation scheduler's readiness predicate for a worker.
    pub fn ready(&self) -> bool {
        self.fault_signal.lock().expect("fault signal").is_some()
            || self.shard.pending_len() > 0
            || !self.queue.is_empty()
            || self.queue.is_closed()
    }

    /// One non-blocking worker step.
    pub fn step(&mut self) -> WorkerStep {
        self.step_inner(false)
    }

    /// One worker step that blocks while there is nothing to do — the
    /// body of the threaded worker loop. Never returns
    /// [`WorkerStep::Idle`] with messages outstanding; returns
    /// [`WorkerStep::Done`] once the queue is closed and everything has
    /// drained.
    pub fn step_blocking(&mut self) -> WorkerStep {
        self.step_inner(true)
    }

    fn step_inner(&mut self, block: bool) -> WorkerStep {
        if let Some(faults) = self.fault_signal.lock().expect("fault signal").take() {
            self.shard.set_faults(faults);
        }
        let fresh = if self.shard.pending_len() == 0 {
            if block {
                match self.queue.pop_batch_blocking(self.batch_window) {
                    Some(batch) => batch,
                    // Closed and empty, nothing pending: done.
                    None => return WorkerStep::Done,
                }
            } else {
                let batch = self.queue.try_pop_batch(self.batch_window);
                if batch.is_empty() {
                    return if self.queue.is_closed() {
                        WorkerStep::Done
                    } else {
                        WorkerStep::Idle
                    };
                }
                batch
            }
        } else {
            self.queue.try_pop_batch(self.batch_window)
        };
        for message in fresh {
            self.shard.accept(message);
        }
        if self.shard.pending_len() == 0 {
            return WorkerStep::Idle;
        }
        let run = self.shard.run_frame();
        self.quarantined
            .store(self.shard.is_quarantined(), Ordering::Release);
        let completed = (run.delivered.len() + run.dropped.len()) as u64;
        if completed > 0 {
            self.in_flight.fetch_sub(completed, Ordering::AcqRel);
            self.drain_frames = 0;
        } else {
            self.drain_frames += 1;
            assert!(
                self.drain_frames < DRAIN_FRAME_LIMIT,
                "shard {} made no progress for {DRAIN_FRAME_LIMIT} frames",
                self.shard.id()
            );
        }
        WorkerStep::Frame(run)
    }
}

/// A concurrent sharded switch-serving engine: [`ServiceCore`] plus one
/// OS thread per shard looping [`WorkerCore::step_blocking`].
pub struct FabricService {
    core: Arc<ServiceCore>,
    workers: Vec<JoinHandle<WorkerResult>>,
}

impl FabricService {
    /// Spawn `config.shards` workers over one shared switch. The first
    /// shard's construction compiles the datapath netlist (through the
    /// switch's shared elaboration cache); the rest reuse it, so startup
    /// cost is one compile regardless of shard count.
    pub fn start(switch: Arc<StagedSwitch>, config: FabricConfig) -> FabricService {
        let core = Arc::new(ServiceCore::new(config));
        let workers = (0..config.shards)
            .map(|id| {
                let mut worker = core.worker(id, Arc::clone(&switch));
                std::thread::Builder::new()
                    .name(format!("fabric-shard-{id}"))
                    .spawn(move || {
                        let mut deliveries = Vec::new();
                        loop {
                            match worker.step_blocking() {
                                WorkerStep::Frame(run) => deliveries.extend(run.delivered),
                                WorkerStep::Idle => {}
                                WorkerStep::Done => break,
                            }
                        }
                        WorkerResult {
                            metrics: worker.shard().metrics.clone(),
                            deliveries,
                        }
                    })
                    .expect("spawn fabric worker")
            })
            .collect();
        FabricService { core, workers }
    }

    /// Request chip faults on one shard's switch (an empty vector clears
    /// them). The shard's worker applies the change at its next loop
    /// iteration, so the effect lands within a frame or two of the call —
    /// this models a chip dying (or being hot-swapped) mid-run.
    pub fn inject_faults(&self, shard: usize, faults: Vec<ChipFault>) {
        self.core.inject_faults(shard, faults);
    }

    /// Whether a shard's health monitor has quarantined it (as last
    /// published by its worker).
    pub fn shard_quarantined(&self, shard: usize) -> bool {
        self.core.shard_quarantined(shard)
    }

    /// Submit one routing request from any thread. Under
    /// [`Backpressure::Block`](crate::Backpressure) this blocks while the
    /// target queue is full; after [`FabricService::drain`] has begun it
    /// returns [`SubmitOutcome::Rejected`].
    pub fn submit(&self, message: Message) -> SubmitOutcome {
        self.core.submit_blocking(message)
    }

    /// Messages currently in flight (queued or pending in a shard).
    pub fn in_flight(&self) -> u64 {
        self.core.in_flight()
    }

    /// Graceful shutdown: refuse new work, let every worker finish its
    /// backlog, join them, and merge queue-side counters into the
    /// per-shard metrics.
    pub fn drain(self) -> FabricReport {
        self.core.close();
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut completions = Vec::new();
        for (i, worker) in self.workers.into_iter().enumerate() {
            let mut result = worker.join().expect("fabric worker panicked");
            self.core.fold_queue_counters(i, &mut result.metrics);
            completions.append(&mut result.deliveries);
            shards.push(result.metrics);
        }
        FabricReport {
            snapshot: FabricSnapshot {
                shards,
                in_flight: 0,
            },
            completions,
        }
    }
}
