//! The threaded fabric service: thread-per-shard workers behind bounded
//! SPSC ingress rings, with an elastic epoch-based control plane.
//!
//! [`FabricService`] spawns one worker thread per shard. Producers call
//! [`FabricService::submit`] (or the frame-batched
//! [`FabricService::submit_batch`]) from any thread; placement and
//! admission control run on the producer's thread, then the message
//! lands in the target shard's [`IngressQueue`] ring under the
//! configured backpressure policy (a blocked producer really blocks).
//! Each worker pulls fresh messages in frame-sized bursts, packs them
//! with its retry backlog into batched routing frames, and runs the
//! compiled-datapath executor ([`Shard`]).
//! [`FabricService::drain`] closes every ring, lets the workers finish
//! their backlogs, joins them, and returns the merged report.
//!
//! # Data-plane layout
//!
//! All cross-thread state is sharded: each shard owns one cache-line-
//! aligned `ShardLane` holding its ingress ring, its slice of the
//! in-flight gauge, its admission counter, its quarantine flag, its
//! fault mailbox, its lane-lifecycle state, its switch-swap mailbox, and
//! its last published metrics. A producer touches only the lanes it
//! submits to; a worker touches only its own lane — and only once per
//! *frame*, not per message: the frame-batched admission path
//! ([`ServiceCore::try_submit_batch`]) reserves a round-robin cursor
//! block for the whole frame, groups messages by shard, and lands each
//! group with a single ring publication and a single in-flight
//! adjustment, while the worker retires a whole frame with one gauge
//! decrement and one metrics publication.
//!
//! # The elastic control plane
//!
//! The fabric resizes live (see [`crate::reconfig`] for the protocol
//! and DESIGN.md §13 for the zero-loss argument). Lanes are
//! pre-allocated to [`FabricConfig::max_shards`] and move monotonically
//! through [`LaneState`]: [`ServiceCore::add_shard`] activates the next
//! unused lane under an epoch bump; [`ServiceCore::remove_shard`] marks
//! a lane draining and closes its ring, so placement stops targeting it
//! while its worker drains the residual backlog and retires the lane;
//! [`ServiceCore::swap_switch`] stages a recompiled switch into every
//! live lane's swap mailbox, and each worker installs it the moment its
//! old-epoch backlog completes. A retired lane's counters stay in every
//! snapshot, so the conservation identity
//! `offered = delivered + rejected + shed + retry_dropped + in_flight`
//! holds across every epoch boundary. [`ServiceCore::set_admission_limit`]
//! retargets the global admission cap at runtime — the knob the
//! SLO controller ([`crate::reconfig::SloController`]) turns.
//!
//! # The scheduler seam
//!
//! The service is split along a scheduler seam. All of its logic lives
//! in two plain structs that never block or spawn:
//!
//! * [`ServiceCore`] — the shared producer-side state with step-wise
//!   submission ([`ServiceCore::try_submit`] /
//!   [`ServiceCore::retry_submit`] / [`ServiceCore::try_submit_batch`])
//!   and the control-plane operations;
//! * [`WorkerCore`] — one shard's serving loop body as a single-step
//!   state machine ([`WorkerCore::step`]).
//!
//! The threaded service is a thin shell: each worker thread loops
//! [`WorkerCore::step_blocking`], and `submit` is
//! [`ServiceCore::submit_blocking`]. The deterministic simulation
//! harness drives the *same* cores through the non-blocking entry points
//! under a seeded scheduler — ring publications, consumes, and
//! reconfiguration operations are scheduler-visible steps — so every
//! interleaving the simulator explores is an interleaving the threaded
//! service could exhibit.
//!
//! Frame composition under real threads depends on OS scheduling, so
//! per-run counters are *not* bit-reproducible — that is what the
//! synchronous [`Fabric`](crate::Fabric) is for. What the service does
//! guarantee (and the tests pin) is conservation — every offered message
//! is delivered, rejected, shed, or retry-dropped by drain, across any
//! sequence of live reconfigurations — and payload integrity end to end.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use concentrator::faults::ChipFault;
use concentrator::StagedSwitch;
use switchsim::Message;

use crate::config::FabricConfig;
use crate::engine::SubmitOutcome;
use crate::metrics::{FabricSnapshot, ShardMetrics};
use crate::queue::{IngressQueue, PushOutcome, TryPush};
use crate::reconfig::LaneState;
use crate::shard::{Delivery, FrameRun, Shard};

/// Frames a worker may spend clearing its backlog after close before the
/// service declares the switch unable to drain.
const DRAIN_FRAME_LIMIT: u64 = 1 << 22;

/// Sentinel for "no global admission cap" in the runtime limit atomic.
const ADMISSION_UNCAPPED: u64 = u64::MAX;

struct WorkerResult {
    metrics: ShardMetrics,
    deliveries: Vec<Delivery>,
}

/// The merged outcome of a service run, produced by
/// [`FabricService::drain`].
#[derive(Debug, Clone)]
pub struct FabricReport {
    /// Per-shard metrics (queue-side counters folded in), one entry per
    /// lane ever activated; `in_flight` is zero — drain completes the
    /// backlog.
    pub snapshot: FabricSnapshot,
    /// Every delivery, grouped by shard in shard order.
    pub completions: Vec<Delivery>,
}

/// One shard's slice of the cross-thread data plane. `align(128)` keeps
/// each lane on its own cache lines (two, against adjacent-line
/// prefetchers), so one shard's producers and worker never ping-pong
/// another shard's counters.
#[repr(align(128))]
struct ShardLane {
    /// The ingress ring producers feed and the worker drains.
    queue: IngressQueue,
    /// Messages submitted to this shard and not yet delivered or dropped.
    /// Incremented by producers *before* the ring publication (a fast
    /// worker must never race the gauge below zero), decremented by the
    /// worker once per completed frame.
    in_flight: AtomicU64,
    /// Admission-control rejections charged to this shard.
    admission_rejected: AtomicU64,
    /// Whether the shard's health monitor has quarantined it (published
    /// by the worker, read by placement).
    quarantined: AtomicBool,
    /// Where the lane is in the `Unused → Active → Draining → Retired`
    /// lifecycle (see [`LaneState`]). Written by the control plane (and
    /// the worker's final retire), read by placement.
    state: AtomicU8,
    /// Cheap flag producers of a fault-set change raise so the worker's
    /// hot path checks one relaxed load instead of taking a mutex.
    fault_pending: AtomicBool,
    /// The pending fault-set change (`None` = no change requested).
    fault_signal: Mutex<Option<Vec<ChipFault>>>,
    /// Raised by [`ServiceCore::swap_switch`]; the worker installs the
    /// staged switch (and lowers the flag) once its backlog completes.
    swap_pending: AtomicBool,
    /// The staged replacement switch (`None` = no swap requested).
    swap_signal: Mutex<Option<Arc<StagedSwitch>>>,
    /// The worker's last published metrics, for live snapshots. Written
    /// once per frame by the worker, read by [`FabricService::snapshot`].
    published: Mutex<ShardMetrics>,
}

impl ShardLane {
    fn new(queue_capacity: usize, state: LaneState) -> ShardLane {
        ShardLane {
            queue: IngressQueue::new(queue_capacity),
            in_flight: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
            quarantined: AtomicBool::new(false),
            state: AtomicU8::new(state as u8),
            fault_pending: AtomicBool::new(false),
            fault_signal: Mutex::new(None),
            swap_pending: AtomicBool::new(false),
            swap_signal: Mutex::new(None),
            published: Mutex::new(ShardMetrics::default()),
        }
    }

    fn state(&self) -> LaneState {
        LaneState::from_u8(self.state.load(Ordering::Acquire))
    }
}

/// What one non-blocking submission step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitStep {
    /// The submission resolved.
    Done(SubmitOutcome),
    /// The chosen shard's queue is full under blocking backpressure: the
    /// message is handed back with its placement. A threaded producer
    /// waits on the queue's condvar; a simulated producer parks until
    /// [`ServiceCore::queue`]`(shard).would_accept(..)` and then calls
    /// [`ServiceCore::retry_submit`] — placement and admission are *not*
    /// re-run, exactly like the blocked thread (unless the shard was
    /// removed while the producer was parked, in which case the retry
    /// re-enters placement under the new epoch).
    Blocked {
        /// The handed-back message.
        message: Message,
        /// The shard placement already chose.
        shard: usize,
    },
}

/// What one frame-batched submission step did: per-outcome counts plus
/// the placed-but-unadmitted remainder a full ring handed back under
/// blocking backpressure. Counts are exactly what the equivalent
/// sequence of single [`ServiceCore::try_submit`] calls would produce.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct BatchSubmit {
    /// Messages that landed on a ring (including any an overlong frame
    /// immediately shed again).
    pub accepted: u64,
    /// Queued messages shed to make room.
    pub shed: u64,
    /// Messages refused (admission control, full ring under
    /// [`Backpressure::Reject`](crate::Backpressure), or closed).
    pub rejected: u64,
    /// Messages handed back under
    /// [`Backpressure::Block`](crate::Backpressure), each with the shard
    /// placement already chose: re-offer through
    /// [`ServiceCore::retry_submit`] (or a blocking push), exactly like a
    /// parked producer.
    pub blocked: Vec<(Message, usize)>,
}

/// The producer-facing half of the service, with no threads inside: the
/// sharded state every submitter and worker touches, exposed as single
/// non-blocking steps so a cooperative scheduler can own the
/// interleaving. Also the control plane: shard add/remove, live switch
/// swap, and runtime admission retargeting, all under epoch bumps.
pub struct ServiceCore {
    config: FabricConfig,
    /// All `config.max_shards` lanes, pre-allocated; `allocated` bounds
    /// the ever-activated prefix.
    lanes: Vec<Arc<ShardLane>>,
    rr_cursor: AtomicUsize,
    /// Lanes ever activated: `lanes[..allocated]` have been part of the
    /// fabric (Active, Draining, or Retired); the rest are Unused.
    /// Monotone — retired lanes keep their slot and their counters.
    allocated: AtomicUsize,
    /// Bumped by every control-plane change (add, remove, swap, admission
    /// retarget). Placement is always against the current epoch's lane
    /// set; the counter itself is observability, not a lock.
    epoch: AtomicU64,
    /// The runtime global admission cap ([`ADMISSION_UNCAPPED`] = none);
    /// seeded from `config.admission_limit`, retargeted live by
    /// [`ServiceCore::set_admission_limit`].
    admission_limit: AtomicU64,
    /// Raised by [`ServiceCore::close`]: distinguishes a ring closed for
    /// shutdown (reject producers) from one closed because its shard was
    /// removed (re-place producers under the new epoch).
    shutting_down: AtomicBool,
    /// Serializes control-plane operations (add/remove/swap/close) so
    /// lane-state transitions and the epoch counter stay coherent. Never
    /// taken on the data path.
    control: Mutex<()>,
}

impl ServiceCore {
    /// Build the shared state: `config.shards` active lanes, with room to
    /// grow to `config.max_shards`.
    ///
    /// # Panics
    /// If the configuration is invalid (see [`FabricConfig::validate`]).
    pub fn new(config: FabricConfig) -> ServiceCore {
        config.validate();
        ServiceCore {
            config,
            lanes: (0..config.max_shards)
                .map(|id| {
                    let state = if id < config.shards {
                        LaneState::Active
                    } else {
                        LaneState::Unused
                    };
                    Arc::new(ShardLane::new(config.queue_capacity, state))
                })
                .collect(),
            rr_cursor: AtomicUsize::new(0),
            allocated: AtomicUsize::new(config.shards),
            epoch: AtomicU64::new(0),
            admission_limit: AtomicU64::new(
                config
                    .admission_limit
                    .map_or(ADMISSION_UNCAPPED, |limit| limit as u64),
            ),
            shutting_down: AtomicBool::new(false),
            control: Mutex::new(()),
        }
    }

    /// The active configuration (startup shape; the live shard count and
    /// admission limit are [`ServiceCore::active_shards`] and
    /// [`ServiceCore::admission_limit`]).
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Shard `id`'s serving loop as a steppable state machine over the
    /// shared `switch`. Call once per activated shard; each worker owns
    /// its core.
    pub fn worker(&self, id: usize, switch: Arc<StagedSwitch>) -> WorkerCore {
        let batch_window = switch.n.max(1);
        let shard =
            Shard::new(id, switch, self.config.retry).with_health_policy(self.config.health);
        WorkerCore {
            shard,
            lane: Arc::clone(&self.lanes[id]),
            batch_window,
            quarantine_published: false,
            drain_frames: 0,
        }
    }

    /// Shard `shard`'s ingress queue (readiness checks, counters).
    pub fn queue(&self, shard: usize) -> &IngressQueue {
        &self.lanes[shard].queue
    }

    /// Admission-control rejections charged to shard `shard` so far.
    pub fn admission_rejected(&self, shard: usize) -> u64 {
        self.lanes[shard].admission_rejected.load(Ordering::Relaxed)
    }

    /// Messages currently in flight (queued or pending in a shard),
    /// summed over the per-shard gauges of every lane ever activated.
    pub fn in_flight(&self) -> u64 {
        self.lanes[..self.allocated_shards()]
            .iter()
            .map(|lane| lane.in_flight.load(Ordering::Acquire))
            .sum()
    }

    /// The reconfiguration epoch: bumped by every shard add/remove,
    /// switch swap, and admission retarget.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Lanes ever activated (Active + Draining + Retired). Lane ids below
    /// this are valid for [`ServiceCore::queue`] and friends.
    pub fn allocated_shards(&self) -> usize {
        self.allocated.load(Ordering::Acquire)
    }

    /// Lanes currently serving (placement targets).
    pub fn active_shards(&self) -> usize {
        self.lanes[..self.allocated_shards()]
            .iter()
            .filter(|lane| lane.state() == LaneState::Active)
            .count()
    }

    /// Where lane `shard` is in its lifecycle.
    pub fn shard_state(&self, shard: usize) -> LaneState {
        self.lanes[shard].state()
    }

    /// Whether [`ServiceCore::close`] has begun (every ring closed for
    /// shutdown, not for removal).
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
    }

    /// The current global admission cap (`None` = uncapped).
    pub fn admission_limit(&self) -> Option<usize> {
        match self.admission_limit.load(Ordering::Acquire) {
            ADMISSION_UNCAPPED => None,
            limit => Some(limit as usize),
        }
    }

    /// Retarget the global admission cap at runtime (`None` = uncapped).
    /// Takes effect on the next submission; a change bumps the epoch.
    /// This is the knob [`crate::reconfig::SloController`] turns.
    pub fn set_admission_limit(&self, limit: Option<usize>) {
        let raw = limit.map_or(ADMISSION_UNCAPPED, |limit| limit as u64);
        if self.admission_limit.swap(raw, Ordering::AcqRel) != raw {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Activate the next unused lane and admit it to the placement ring
    /// under an epoch bump. Returns the new shard's id — the caller owns
    /// spawning (or cooperatively stepping) a worker for it — or `None`
    /// if every lane is already allocated or the service is shutting
    /// down.
    pub fn add_shard(&self) -> Option<usize> {
        let _control = self.control.lock().expect("control plane");
        if self.shutting_down.load(Ordering::Acquire) {
            return None;
        }
        let allocated = self.allocated.load(Ordering::Acquire);
        if allocated == self.lanes.len() {
            return None;
        }
        // State first, then the allocated publication (release): a
        // producer that observes the grown prefix sees an Active lane.
        self.lanes[allocated]
            .state
            .store(LaneState::Active as u8, Ordering::Release);
        self.allocated.store(allocated + 1, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::AcqRel);
        Some(allocated)
    }

    /// Remove shard `shard` from the placement ring under an epoch bump:
    /// its lane turns [`LaneState::Draining`] and its ring closes, so
    /// producers stop landing on it (parked ones re-place under the new
    /// epoch — see [`ServiceCore::retry_submit`]) while its worker drains
    /// the residual backlog and retires the lane. Returns `false` if the
    /// lane is not currently active, it is the last active lane (a fabric
    /// must keep serving), or the service is shutting down.
    pub fn remove_shard(&self, shard: usize) -> bool {
        let _control = self.control.lock().expect("control plane");
        if self.shutting_down.load(Ordering::Acquire) {
            return false;
        }
        let allocated = self.allocated.load(Ordering::Acquire);
        if shard >= allocated || self.lanes[shard].state() != LaneState::Active {
            return false;
        }
        let active = self.lanes[..allocated]
            .iter()
            .filter(|lane| lane.state() == LaneState::Active)
            .count();
        if active <= 1 {
            return false;
        }
        self.lanes[shard]
            .state
            .store(LaneState::Draining as u8, Ordering::Release);
        self.lanes[shard].queue.close();
        self.epoch.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// Stage a recompiled replacement switch into every live lane's swap
    /// mailbox under an epoch bump — phase one of the two-phase swap.
    /// Each worker performs phase two itself: it finishes the frames it
    /// already accepted on the old switch, then installs the replacement
    /// the moment its pending queue is empty
    /// (see [`Shard::install_switch`]). Returns how many lanes were
    /// signalled. The replacement's `n` must cover every live switch's
    /// (checked at install).
    pub fn swap_switch(&self, switch: Arc<StagedSwitch>) -> usize {
        let _control = self.control.lock().expect("control plane");
        let allocated = self.allocated.load(Ordering::Acquire);
        let mut signalled = 0;
        for lane in &self.lanes[..allocated] {
            match lane.state() {
                LaneState::Active | LaneState::Draining => {
                    *lane.swap_signal.lock().expect("swap signal") = Some(Arc::clone(&switch));
                    lane.swap_pending.store(true, Ordering::Release);
                    signalled += 1;
                }
                LaneState::Unused | LaneState::Retired => {}
            }
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
        signalled
    }

    /// Request chip faults on one shard's switch (an empty vector clears
    /// them). The shard's worker applies the change at its next step.
    pub fn inject_faults(&self, shard: usize, faults: Vec<ChipFault>) {
        let lane = &self.lanes[shard];
        *lane.fault_signal.lock().expect("fault signal") = Some(faults);
        lane.fault_pending.store(true, Ordering::Release);
    }

    /// Whether a shard's health monitor has quarantined it (as last
    /// published by its worker).
    pub fn shard_quarantined(&self, shard: usize) -> bool {
        self.lanes[shard].quarantined.load(Ordering::Acquire)
    }

    /// Close every ingress queue for shutdown: producers are refused from
    /// now on, workers drain their backlogs and then report
    /// [`WorkerStep::Done`].
    pub fn close(&self) {
        let _control = self.control.lock().expect("control plane");
        self.shutting_down.store(true, Ordering::Release);
        let allocated = self.allocated.load(Ordering::Acquire);
        for lane in &self.lanes[..allocated] {
            lane.queue.close();
        }
    }

    /// Steer a preferred placement (an index below `allocated`) onto a
    /// serving lane: keep it when it is active and healthy, otherwise
    /// take the next active unquarantined lane in a deterministic
    /// wrapping scan, falling back to any active lane (degraded service
    /// beats none). Draining and retired lanes never receive new traffic.
    fn route(&self, preferred: usize, allocated: usize) -> usize {
        for quarantine_matters in [true, false] {
            for step in 0..allocated {
                let idx = (preferred + step) % allocated;
                let lane = &self.lanes[idx];
                if lane.state() == LaneState::Active
                    && !(quarantine_matters && lane.quarantined.load(Ordering::Acquire))
                {
                    return idx;
                }
            }
        }
        // Unreachable while an active lane exists (the control plane
        // refuses to drain the last one); kept total for the transient
        // threaded race where a scan straddles a state flip.
        preferred
    }

    /// Place a message and advance the round-robin cursor.
    fn place(&self, source: usize) -> usize {
        let allocated = self.allocated_shards();
        let cursor = self.rr_cursor.fetch_add(1, Ordering::Relaxed);
        self.route(
            self.config.placement.place(source, cursor, allocated),
            allocated,
        )
    }

    /// One non-blocking submission step: placement, admission control,
    /// then a [`TryPush`] on the chosen queue.
    pub fn try_submit(&self, message: Message) -> SubmitStep {
        let shard = self.place(message.source);
        let limit = self.admission_limit.load(Ordering::Acquire);
        if limit != ADMISSION_UNCAPPED && self.in_flight() >= limit {
            self.lanes[shard]
                .admission_rejected
                .fetch_add(1, Ordering::Relaxed);
            return SubmitStep::Done(SubmitOutcome::Rejected);
        }
        self.offer(message, shard)
    }

    /// Re-offer a message a previous step handed back as
    /// [`SubmitStep::Blocked`]. Ordinarily skips placement and admission —
    /// the message already holds a slot on `shard`'s queue order, exactly
    /// as a producer blocked on the queue's condvar does. If `shard` was
    /// *removed* while the producer was parked (ring closed without a
    /// shutdown), the retry re-enters placement under the current epoch
    /// instead: a live reconfiguration must never turn a parked producer's
    /// message into a loss.
    pub fn retry_submit(&self, message: Message, shard: usize) -> SubmitStep {
        if self.lanes[shard].queue.is_closed() && !self.is_shutting_down() {
            return self.try_submit(message);
        }
        self.offer(message, shard)
    }

    fn offer(&self, message: Message, shard: usize) -> SubmitStep {
        let lane = &self.lanes[shard];
        // Count the message in flight *before* it becomes poppable: a fast
        // worker could otherwise complete (and decrement) it first and wrap
        // the gauge below zero.
        lane.in_flight.fetch_add(1, Ordering::AcqRel);
        match lane.queue.try_push(message, self.config.backpressure) {
            TryPush::Enqueued => SubmitStep::Done(SubmitOutcome::Accepted),
            // A shed swaps one queued message for another that will never
            // complete: net in-flight change is zero, so undo our add.
            TryPush::EnqueuedAfterShed => {
                lane.in_flight.fetch_sub(1, Ordering::AcqRel);
                SubmitStep::Done(SubmitOutcome::AcceptedAfterShed)
            }
            TryPush::Rejected => {
                lane.in_flight.fetch_sub(1, Ordering::AcqRel);
                SubmitStep::Done(SubmitOutcome::Rejected)
            }
            TryPush::WouldBlock(message) => {
                lane.in_flight.fetch_sub(1, Ordering::AcqRel);
                SubmitStep::Blocked { message, shard }
            }
        }
    }

    /// One non-blocking *frame* submission: reserve a round-robin cursor
    /// block for the whole frame (one `fetch_add` instead of one per
    /// message — the deficit-round-robin spread: message `i` of the frame
    /// takes cursor slot `cursor + i`, striding the frame across every
    /// healthy shard), group by shard, then land each group with a single
    /// ring publication and a single in-flight adjustment.
    ///
    /// Observationally this is the per-message admit state machine run
    /// `messages.len()` times; only the atomics are amortized.
    pub fn try_submit_batch(&self, messages: Vec<Message>) -> BatchSubmit {
        let len = messages.len();
        let mut result = BatchSubmit::default();
        if len == 0 {
            return result;
        }
        // Admission control at frame grain: one gauge read bounds the
        // whole frame (the per-message path re-reads per message; both
        // are races against concurrent completions, and conservation
        // charges refusals identically).
        let limit = self.admission_limit.load(Ordering::Acquire);
        let admitted = if limit == ADMISSION_UNCAPPED {
            len
        } else {
            (limit.saturating_sub(self.in_flight()) as usize).min(len)
        };
        let allocated = self.allocated_shards();
        let cursor = self.rr_cursor.fetch_add(len, Ordering::Relaxed);
        let mut groups: Vec<Vec<Message>> = vec![Vec::new(); allocated];
        for (i, message) in messages.into_iter().enumerate() {
            let shard = self.route(
                self.config
                    .placement
                    .place(message.source, cursor.wrapping_add(i), allocated),
                allocated,
            );
            if i < admitted {
                groups[shard].push(message);
            } else {
                self.lanes[shard]
                    .admission_rejected
                    .fetch_add(1, Ordering::Relaxed);
                result.rejected += 1;
            }
        }
        for (shard, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let submitted = group.len() as u64;
            let lane = &self.lanes[shard];
            lane.in_flight.fetch_add(submitted, Ordering::AcqRel);
            let push = lane.queue.try_push_batch(group, self.config.backpressure);
            // Undo the gauge for everything that will never complete:
            // refusals, hand-backs, and the messages a shed evicted.
            let undo = submitted - push.enqueued as u64 + push.shed;
            if undo > 0 {
                lane.in_flight.fetch_sub(undo, Ordering::AcqRel);
            }
            result.accepted += push.enqueued as u64;
            result.shed += push.shed;
            result.rejected += push.rejected as u64;
            result
                .blocked
                .extend(push.blocked.into_iter().map(|message| (message, shard)));
        }
        result
    }

    /// Submit one routing request, blocking while the target queue is
    /// full under [`Backpressure::Block`](crate::Backpressure). The
    /// threaded service's `submit`.
    pub fn submit_blocking(&self, message: Message) -> SubmitOutcome {
        match self.try_submit(message) {
            SubmitStep::Done(outcome) => outcome,
            SubmitStep::Blocked { message, shard } => self.park_and_push(message, shard),
        }
    }

    /// The threaded slow path behind a [`SubmitStep::Blocked`] hand-back:
    /// block on `shard`'s ring until the message lands — and if the ring
    /// closes because the shard was *removed* (not a shutdown), re-enter
    /// placement under the new epoch instead of reporting a loss. The
    /// closed ring's rejection count and the fresh placement's offer
    /// balance, so conservation holds through the epoch boundary.
    fn park_and_push(&self, message: Message, shard: usize) -> SubmitOutcome {
        let mut message = message;
        let mut shard = shard;
        loop {
            let lane = &self.lanes[shard];
            if lane.queue.is_closed() && !self.is_shutting_down() {
                match self.try_submit(message) {
                    SubmitStep::Done(outcome) => return outcome,
                    SubmitStep::Blocked {
                        message: held,
                        shard: placed,
                    } => {
                        message = held;
                        shard = placed;
                        continue;
                    }
                }
            }
            lane.in_flight.fetch_add(1, Ordering::AcqRel);
            match lane.queue.push(message.clone(), self.config.backpressure) {
                PushOutcome::Enqueued => return SubmitOutcome::Accepted,
                PushOutcome::EnqueuedAfterShed => {
                    lane.in_flight.fetch_sub(1, Ordering::AcqRel);
                    return SubmitOutcome::AcceptedAfterShed;
                }
                PushOutcome::Rejected => {
                    lane.in_flight.fetch_sub(1, Ordering::AcqRel);
                    if self.is_shutting_down() {
                        return SubmitOutcome::Rejected;
                    }
                    // The ring closed under us: the shard was removed
                    // while we were parked. Loop back and re-place.
                }
            }
        }
    }

    /// Submit a whole frame, blocking under
    /// [`Backpressure::Block`](crate::Backpressure) until every message
    /// is placed (or the queues close for shutdown, which rejects the
    /// remainder). The threaded service's `submit_batch`;
    /// [`BatchSubmit::blocked`] is always empty on return.
    pub fn submit_batch_blocking(&self, messages: Vec<Message>) -> BatchSubmit {
        let mut result = self.try_submit_batch(messages);
        // The blocked remainder takes the per-message slow path: it can
        // re-enter placement if its shard is removed mid-park, which a
        // whole-group blocking push could not express.
        for (message, shard) in std::mem::take(&mut result.blocked) {
            match self.park_and_push(message, shard) {
                SubmitOutcome::Accepted => result.accepted += 1,
                SubmitOutcome::AcceptedAfterShed => {
                    result.accepted += 1;
                    result.shed += 1;
                }
                SubmitOutcome::Rejected => result.rejected += 1,
                SubmitOutcome::Backpressured(_) => {
                    unreachable!("blocking push never hands back")
                }
            }
        }
        result
    }

    /// Fold shard `shard`'s queue-side counters (and admission
    /// rejections) into `metrics`.
    ///
    /// This is the **single** fold site: every snapshot path — the live
    /// [`FabricService::snapshot`], the drain-time merge, and the
    /// simulation harness's ledger — goes through it exactly once per
    /// shard per snapshot, against a fresh (un-folded) copy of the
    /// worker's metrics. Folding twice would double-count queue-level
    /// rejected/shed against `offered` and break conservation; the drain
    /// path asserts the identity in debug builds.
    pub fn fold_queue_counters(&self, shard: usize, metrics: &mut ShardMetrics) {
        let (offered, rejected, shed) = self.lanes[shard].queue.counters();
        let admission = self.lanes[shard].admission_rejected.load(Ordering::Relaxed);
        metrics.offered += offered + admission;
        metrics.rejected += rejected + admission;
        metrics.shed += shed;
    }

    /// A live snapshot: each activated lane's last *published* per-frame
    /// metrics with the queue-side counters folded in (exactly once — see
    /// [`ServiceCore::fold_queue_counters`]), plus the summed in-flight
    /// gauge. Draining and retired lanes stay in the snapshot — their
    /// counters are history the conservation identity still needs — so a
    /// snapshot taken mid-reconfiguration neither double-counts nor drops
    /// a draining shard's in-flight messages. Counter reads are not
    /// mutually atomic while workers run, so a live snapshot's
    /// conservation identity may be off by the frames in progress; the
    /// drain-time snapshot is exact.
    pub fn snapshot(&self) -> FabricSnapshot {
        let allocated = self.allocated_shards();
        let mut shards = Vec::with_capacity(allocated);
        for (i, lane) in self.lanes[..allocated].iter().enumerate() {
            let mut metrics = lane.published.lock().expect("published metrics").clone();
            self.fold_queue_counters(i, &mut metrics);
            shards.push(metrics);
        }
        FabricSnapshot {
            shards,
            in_flight: self.in_flight(),
        }
    }
}

/// What one worker step did.
#[derive(Debug)]
pub enum WorkerStep {
    /// Executed one batched routing frame.
    Frame(FrameRun),
    /// Nothing to do right now (queue empty, nothing pending). A
    /// simulated worker is re-stepped when work arrives; a threaded one
    /// never sees this (it blocks instead).
    Idle,
    /// Queue closed and drained, backlog empty: the worker is finished
    /// (and its lane, if draining, is retired).
    Done,
}

/// One shard's serving loop as a single-step state machine: apply any
/// pending fault signal, install a staged switch swap once the old-epoch
/// backlog has completed, drain the ring in one frame-sized burst, run
/// one batched frame, and retire the frame against the lane — one gauge
/// decrement, one metrics publication, a quarantine store only on
/// transitions. Between the burst pop and the frame retirement the hot
/// path touches no cross-thread state at all.
pub struct WorkerCore {
    shard: Shard,
    lane: Arc<ShardLane>,
    batch_window: usize,
    /// Last quarantine value published, so the flag is stored only on
    /// transitions (placement reads it from every producer).
    quarantine_published: bool,
    drain_frames: u64,
}

impl WorkerCore {
    /// The shard this core serves (metrics, health, pending state).
    pub fn shard(&self) -> &Shard {
        &self.shard
    }

    /// Whether a step right now would make progress: a fault signal or
    /// switch swap is pending, messages are queued or pending, or close
    /// has been requested (so the step would resolve to
    /// [`WorkerStep::Done`]). The simulation scheduler's readiness
    /// predicate for a worker.
    pub fn ready(&self) -> bool {
        self.lane.fault_pending.load(Ordering::Acquire)
            || self.lane.swap_pending.load(Ordering::Acquire)
            || self.shard.pending_len() > 0
            || !self.lane.queue.is_empty()
            || self.lane.queue.is_closed()
    }

    /// One non-blocking worker step.
    pub fn step(&mut self) -> WorkerStep {
        self.step_inner(false)
    }

    /// One worker step that blocks while there is nothing to do — the
    /// body of the threaded worker loop. Never returns
    /// [`WorkerStep::Idle`] with messages outstanding; returns
    /// [`WorkerStep::Done`] once the queue is closed and everything has
    /// drained.
    pub fn step_blocking(&mut self) -> WorkerStep {
        self.step_inner(true)
    }

    /// Phase two of the live switch swap: install the staged replacement
    /// once (and only once) the pending queue is empty, so every frame
    /// admitted under the old epoch completed on the old switch. Messages
    /// still in the ingress ring route on whichever switch is installed
    /// when they are popped — safe, because the replacement covers the
    /// old input range (asserted by [`Shard::install_switch`]).
    fn maybe_install_switch(&mut self) {
        if !self.lane.swap_pending.load(Ordering::Acquire) {
            return;
        }
        if self.shard.pending_len() > 0 {
            return;
        }
        if let Some(switch) = self.lane.swap_signal.lock().expect("swap signal").take() {
            self.batch_window = switch.n.max(1);
            self.shard.install_switch(switch);
        }
        self.lane.swap_pending.store(false, Ordering::Release);
    }

    /// Mark the lane retired if it was draining: the backlog is done and
    /// the worker is exiting.
    fn retire_lane(&self) {
        let _ = self.lane.state.compare_exchange(
            LaneState::Draining as u8,
            LaneState::Retired as u8,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    fn step_inner(&mut self, block: bool) -> WorkerStep {
        if self.lane.fault_pending.load(Ordering::Acquire) {
            if let Some(faults) = self.lane.fault_signal.lock().expect("fault signal").take() {
                self.shard.set_faults(faults);
            }
            self.lane.fault_pending.store(false, Ordering::Release);
        }
        self.maybe_install_switch();
        let fresh = if self.shard.pending_len() == 0 {
            if block {
                match self.lane.queue.pop_batch_blocking(self.batch_window) {
                    Some(batch) => batch,
                    // Closed and empty, nothing pending: done.
                    None => {
                        self.retire_lane();
                        return WorkerStep::Done;
                    }
                }
            } else {
                let batch = self.lane.queue.try_pop_batch(self.batch_window);
                if batch.is_empty() {
                    return if self.lane.queue.is_closed() {
                        self.retire_lane();
                        WorkerStep::Done
                    } else {
                        WorkerStep::Idle
                    };
                }
                batch
            }
        } else if self.lane.swap_pending.load(Ordering::Acquire) {
            // A swap is staged: finish the old-epoch backlog before
            // accepting new-epoch traffic, so the install point (pending
            // empty) arrives within a bounded number of frames even under
            // sustained load.
            Vec::new()
        } else {
            self.lane.queue.try_pop_batch(self.batch_window)
        };
        // A blocking pop can park across a swap request: install now,
        // before the freshly popped (new-epoch) messages enter the
        // pending queue.
        self.maybe_install_switch();
        for message in fresh {
            self.shard.accept(message);
        }
        if self.shard.pending_len() == 0 {
            return WorkerStep::Idle;
        }
        let run = self.shard.run_frame();
        let quarantined = self.shard.is_quarantined();
        if quarantined != self.quarantine_published {
            self.quarantine_published = quarantined;
            self.lane.quarantined.store(quarantined, Ordering::Release);
        }
        // One metrics publication per frame keeps live snapshots fresh
        // without any per-message shared-state traffic. Publish *before*
        // the gauge decrement: a snapshot that observes the gauge at zero
        // is then guaranteed to see the metrics covering every completed
        // frame, so quiescent live snapshots satisfy conservation exactly.
        *self.lane.published.lock().expect("published metrics") = self.shard.metrics.clone();
        let completed = (run.delivered.len() + run.dropped.len()) as u64;
        if completed > 0 {
            self.lane.in_flight.fetch_sub(completed, Ordering::AcqRel);
            self.drain_frames = 0;
        } else {
            self.drain_frames += 1;
            assert!(
                self.drain_frames < DRAIN_FRAME_LIMIT,
                "shard {} made no progress for {DRAIN_FRAME_LIMIT} frames",
                self.shard.id()
            );
        }
        WorkerStep::Frame(run)
    }
}

/// A concurrent sharded switch-serving engine: [`ServiceCore`] plus one
/// OS thread per active shard looping [`WorkerCore::step_blocking`], with
/// live shard add/remove, switch swap, and admission retargeting.
pub struct FabricService {
    core: Arc<ServiceCore>,
    /// Worker threads with the shard ids they serve. Removed shards'
    /// workers exit early and are joined (trivially) at drain.
    workers: Mutex<Vec<(usize, JoinHandle<WorkerResult>)>>,
    /// The switch future workers start on — updated by
    /// [`FabricService::swap_switch`] so a later
    /// [`FabricService::add_shard`] begins on the current topology.
    switch: Mutex<Arc<StagedSwitch>>,
}

impl FabricService {
    /// Spawn `config.shards` workers over one shared switch. The first
    /// shard's construction compiles the datapath netlist (through the
    /// switch's shared elaboration cache); the rest reuse it, so startup
    /// cost is one compile regardless of shard count.
    pub fn start(switch: Arc<StagedSwitch>, config: FabricConfig) -> FabricService {
        let core = Arc::new(ServiceCore::new(config));
        let workers = (0..config.shards)
            .map(|id| (id, Self::spawn_worker(&core, id, Arc::clone(&switch))))
            .collect();
        FabricService {
            core,
            workers: Mutex::new(workers),
            switch: Mutex::new(switch),
        }
    }

    fn spawn_worker(
        core: &Arc<ServiceCore>,
        id: usize,
        switch: Arc<StagedSwitch>,
    ) -> JoinHandle<WorkerResult> {
        let mut worker = core.worker(id, switch);
        std::thread::Builder::new()
            .name(format!("fabric-shard-{id}"))
            .spawn(move || {
                let mut deliveries = Vec::new();
                loop {
                    match worker.step_blocking() {
                        WorkerStep::Frame(run) => deliveries.extend(run.delivered),
                        WorkerStep::Idle => {}
                        WorkerStep::Done => break,
                    }
                }
                WorkerResult {
                    metrics: worker.shard().metrics.clone(),
                    deliveries,
                }
            })
            .expect("spawn fabric worker")
    }

    /// Grow the fabric by one shard: activate the next unused lane under
    /// an epoch bump and spawn its worker on the current switch. Returns
    /// the new shard's id, or `None` once `config.max_shards` lanes are
    /// allocated (or drain has begun).
    pub fn add_shard(&self) -> Option<usize> {
        let switch = Arc::clone(&self.switch.lock().expect("service switch"));
        let id = self.core.add_shard()?;
        let handle = Self::spawn_worker(&self.core, id, switch);
        self.workers
            .lock()
            .expect("service workers")
            .push((id, handle));
        Some(id)
    }

    /// Shrink the fabric by one shard: the lane stops admitting, its
    /// worker drains the residual backlog, hands every message back to
    /// the ledger, and exits. Producers parked on the removed shard
    /// re-place under the new epoch. Returns `false` if the shard is not
    /// active or is the last one.
    pub fn remove_shard(&self, shard: usize) -> bool {
        self.core.remove_shard(shard)
    }

    /// Live switch swap: stage a recompiled replacement into every live
    /// lane (two-phase — see [`ServiceCore::swap_switch`]) and make it
    /// the switch future [`FabricService::add_shard`] workers start on.
    /// Returns how many lanes were signalled.
    pub fn swap_switch(&self, switch: Arc<StagedSwitch>) -> usize {
        *self.switch.lock().expect("service switch") = Arc::clone(&switch);
        self.core.swap_switch(switch)
    }

    /// Retarget the global admission cap at runtime (`None` = uncapped).
    pub fn set_admission_limit(&self, limit: Option<usize>) {
        self.core.set_admission_limit(limit);
    }

    /// The reconfiguration epoch (bumped by every control-plane change).
    pub fn epoch(&self) -> u64 {
        self.core.epoch()
    }

    /// Lanes currently serving (placement targets).
    pub fn active_shards(&self) -> usize {
        self.core.active_shards()
    }

    /// Request chip faults on one shard's switch (an empty vector clears
    /// them). The shard's worker applies the change at its next loop
    /// iteration, so the effect lands within a frame or two of the call —
    /// this models a chip dying (or being hot-swapped) mid-run.
    pub fn inject_faults(&self, shard: usize, faults: Vec<ChipFault>) {
        self.core.inject_faults(shard, faults);
    }

    /// Whether a shard's health monitor has quarantined it (as last
    /// published by its worker).
    pub fn shard_quarantined(&self, shard: usize) -> bool {
        self.core.shard_quarantined(shard)
    }

    /// Submit one routing request from any thread. Under
    /// [`Backpressure::Block`](crate::Backpressure) this blocks while the
    /// target queue is full; after [`FabricService::drain`] has begun it
    /// returns [`SubmitOutcome::Rejected`].
    pub fn submit(&self, message: Message) -> SubmitOutcome {
        self.core.submit_blocking(message)
    }

    /// Submit a whole frame of routing requests from any thread with one
    /// placement-cursor reservation, one ring publication per target
    /// shard, and one in-flight adjustment per target shard. Under
    /// [`Backpressure::Block`](crate::Backpressure) this blocks until the
    /// whole frame is placed (or drain begins, which rejects the
    /// remainder).
    pub fn submit_batch(&self, messages: Vec<Message>) -> BatchSubmit {
        self.core.submit_batch_blocking(messages)
    }

    /// Messages currently in flight (queued or pending in a shard).
    pub fn in_flight(&self) -> u64 {
        self.core.in_flight()
    }

    /// A live snapshot of the running service: each worker's last
    /// published per-frame metrics, queue counters folded in exactly
    /// once. See [`ServiceCore::snapshot`].
    pub fn snapshot(&self) -> FabricSnapshot {
        self.core.snapshot()
    }

    /// Graceful shutdown: refuse new work, let every worker finish its
    /// backlog, join them, and merge queue-side counters into the
    /// per-shard metrics (exactly once per shard — the workers' own
    /// metrics never include queue-side counts). The report has one
    /// entry per lane ever activated, in lane order, whether or not the
    /// lane was removed mid-run.
    pub fn drain(self) -> FabricReport {
        self.core.close();
        let workers = self
            .workers
            .into_inner()
            .expect("service workers")
            .into_iter();
        let allocated = self.core.allocated_shards();
        let mut shards = vec![ShardMetrics::default(); allocated];
        let mut joined = vec![false; allocated];
        let mut completions = Vec::new();
        for (id, worker) in workers {
            let mut result = worker.join().expect("fabric worker panicked");
            self.core.fold_queue_counters(id, &mut result.metrics);
            completions.append(&mut result.deliveries);
            shards[id] = result.metrics;
            joined[id] = true;
        }
        debug_assert!(
            joined.iter().all(|&j| j),
            "every activated lane must have had a worker"
        );
        let snapshot = FabricSnapshot {
            shards,
            in_flight: 0,
        };
        // The drain-time conservation identity — every offered message
        // delivered, rejected, shed, or retry-dropped — holds exactly
        // once the workers have joined; a double fold (or a missed one)
        // trips this immediately.
        debug_assert!(
            snapshot.conserved(),
            "drain snapshot violates conservation: {:?}",
            snapshot.totals()
        );
        FabricReport {
            snapshot,
            completions,
        }
    }
}
