//! The threaded fabric service: thread-per-shard workers behind bounded
//! SPSC ingress rings.
//!
//! [`FabricService`] spawns one worker thread per shard. Producers call
//! [`FabricService::submit`] (or the frame-batched
//! [`FabricService::submit_batch`]) from any thread; placement and
//! admission control run on the producer's thread, then the message
//! lands in the target shard's [`IngressQueue`] ring under the
//! configured backpressure policy (a blocked producer really blocks).
//! Each worker pulls fresh messages in frame-sized bursts, packs them
//! with its retry backlog into batched routing frames, and runs the
//! compiled-datapath executor ([`Shard`]).
//! [`FabricService::drain`] closes every ring, lets the workers finish
//! their backlogs, joins them, and returns the merged report.
//!
//! # Data-plane layout
//!
//! All cross-thread state is sharded: each shard owns one cache-line-
//! aligned `ShardLane` holding its ingress ring, its slice of the
//! in-flight gauge, its admission counter, its quarantine flag, its
//! fault mailbox, and its last published metrics. A producer touches
//! only the lanes it submits to; a worker touches only its own lane —
//! and only once per *frame*, not per message: the frame-batched
//! admission path ([`ServiceCore::try_submit_batch`]) reserves a
//! round-robin cursor block for the whole frame, groups messages by
//! shard, and lands each group with a single ring publication and a
//! single in-flight adjustment, while the worker retires a whole frame
//! with one gauge decrement and one metrics publication.
//!
//! # The scheduler seam
//!
//! The service is split along a scheduler seam. All of its logic lives
//! in two plain structs that never block or spawn:
//!
//! * [`ServiceCore`] — the shared producer-side state with step-wise
//!   submission ([`ServiceCore::try_submit`] /
//!   [`ServiceCore::retry_submit`] / [`ServiceCore::try_submit_batch`]);
//! * [`WorkerCore`] — one shard's serving loop body as a single-step
//!   state machine ([`WorkerCore::step`]).
//!
//! The threaded service is a thin shell: each worker thread loops
//! [`WorkerCore::step_blocking`], and `submit` is
//! [`ServiceCore::submit_blocking`]. The deterministic simulation
//! harness drives the *same* cores through the non-blocking entry points
//! under a seeded scheduler — ring publications and consumes are
//! scheduler-visible steps — so every interleaving the simulator
//! explores is an interleaving the threaded service could exhibit.
//!
//! Frame composition under real threads depends on OS scheduling, so
//! per-run counters are *not* bit-reproducible — that is what the
//! synchronous [`Fabric`](crate::Fabric) is for. What the service does
//! guarantee (and the tests pin) is conservation — every offered message
//! is delivered, rejected, shed, or retry-dropped by drain — and payload
//! integrity end to end.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use concentrator::faults::ChipFault;
use concentrator::StagedSwitch;
use switchsim::Message;

use crate::config::{steer_scan, FabricConfig};
use crate::engine::SubmitOutcome;
use crate::metrics::{FabricSnapshot, ShardMetrics};
use crate::queue::{IngressQueue, PushOutcome, TryPush};
use crate::shard::{Delivery, FrameRun, Shard};

/// Frames a worker may spend clearing its backlog after close before the
/// service declares the switch unable to drain.
const DRAIN_FRAME_LIMIT: u64 = 1 << 22;

struct WorkerResult {
    metrics: ShardMetrics,
    deliveries: Vec<Delivery>,
}

/// The merged outcome of a service run, produced by
/// [`FabricService::drain`].
#[derive(Debug, Clone)]
pub struct FabricReport {
    /// Per-shard metrics (queue-side counters folded in); `in_flight` is
    /// zero — drain completes the backlog.
    pub snapshot: FabricSnapshot,
    /// Every delivery, grouped by shard in shard order.
    pub completions: Vec<Delivery>,
}

/// One shard's slice of the cross-thread data plane. `align(128)` keeps
/// each lane on its own cache lines (two, against adjacent-line
/// prefetchers), so one shard's producers and worker never ping-pong
/// another shard's counters.
#[repr(align(128))]
struct ShardLane {
    /// The ingress ring producers feed and the worker drains.
    queue: IngressQueue,
    /// Messages submitted to this shard and not yet delivered or dropped.
    /// Incremented by producers *before* the ring publication (a fast
    /// worker must never race the gauge below zero), decremented by the
    /// worker once per completed frame.
    in_flight: AtomicU64,
    /// Admission-control rejections charged to this shard.
    admission_rejected: AtomicU64,
    /// Whether the shard's health monitor has quarantined it (published
    /// by the worker, read by placement).
    quarantined: AtomicBool,
    /// Cheap flag producers of a fault-set change raise so the worker's
    /// hot path checks one relaxed load instead of taking a mutex.
    fault_pending: AtomicBool,
    /// The pending fault-set change (`None` = no change requested).
    fault_signal: Mutex<Option<Vec<ChipFault>>>,
    /// The worker's last published metrics, for live snapshots. Written
    /// once per frame by the worker, read by [`FabricService::snapshot`].
    published: Mutex<ShardMetrics>,
}

impl ShardLane {
    fn new(queue_capacity: usize) -> ShardLane {
        ShardLane {
            queue: IngressQueue::new(queue_capacity),
            in_flight: AtomicU64::new(0),
            admission_rejected: AtomicU64::new(0),
            quarantined: AtomicBool::new(false),
            fault_pending: AtomicBool::new(false),
            fault_signal: Mutex::new(None),
            published: Mutex::new(ShardMetrics::default()),
        }
    }
}

/// What one non-blocking submission step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitStep {
    /// The submission resolved.
    Done(SubmitOutcome),
    /// The chosen shard's queue is full under blocking backpressure: the
    /// message is handed back with its placement. A threaded producer
    /// waits on the queue's condvar; a simulated producer parks until
    /// [`ServiceCore::queue`]`(shard).would_accept(..)` and then calls
    /// [`ServiceCore::retry_submit`] — placement and admission are *not*
    /// re-run, exactly like the blocked thread.
    Blocked {
        /// The handed-back message.
        message: Message,
        /// The shard placement already chose.
        shard: usize,
    },
}

/// What one frame-batched submission step did: per-outcome counts plus
/// the placed-but-unadmitted remainder a full ring handed back under
/// blocking backpressure. Counts are exactly what the equivalent
/// sequence of single [`ServiceCore::try_submit`] calls would produce.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct BatchSubmit {
    /// Messages that landed on a ring (including any an overlong frame
    /// immediately shed again).
    pub accepted: u64,
    /// Queued messages shed to make room.
    pub shed: u64,
    /// Messages refused (admission control, full ring under
    /// [`Backpressure::Reject`](crate::Backpressure), or closed).
    pub rejected: u64,
    /// Messages handed back under
    /// [`Backpressure::Block`](crate::Backpressure), each with the shard
    /// placement already chose: re-offer through
    /// [`ServiceCore::retry_submit`] (or a blocking push), exactly like a
    /// parked producer.
    pub blocked: Vec<(Message, usize)>,
}

/// The producer-facing half of the service, with no threads inside: the
/// sharded state every submitter and worker touches, exposed as single
/// non-blocking steps so a cooperative scheduler can own the
/// interleaving.
pub struct ServiceCore {
    config: FabricConfig,
    lanes: Vec<Arc<ShardLane>>,
    rr_cursor: AtomicUsize,
}

impl ServiceCore {
    /// Build the shared state for `config.shards` shards.
    ///
    /// # Panics
    /// If the configuration is invalid (see [`FabricConfig::validate`]).
    pub fn new(config: FabricConfig) -> ServiceCore {
        config.validate();
        ServiceCore {
            config,
            lanes: (0..config.shards)
                .map(|_| Arc::new(ShardLane::new(config.queue_capacity)))
                .collect(),
            rr_cursor: AtomicUsize::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Shard `id`'s serving loop as a steppable state machine over the
    /// shared `switch`. Call once per shard; each worker owns its core.
    pub fn worker(&self, id: usize, switch: Arc<StagedSwitch>) -> WorkerCore {
        let batch_window = switch.n.max(1);
        let shard =
            Shard::new(id, switch, self.config.retry).with_health_policy(self.config.health);
        WorkerCore {
            shard,
            lane: Arc::clone(&self.lanes[id]),
            batch_window,
            quarantine_published: false,
            drain_frames: 0,
        }
    }

    /// Shard `shard`'s ingress queue (readiness checks, counters).
    pub fn queue(&self, shard: usize) -> &IngressQueue {
        &self.lanes[shard].queue
    }

    /// Admission-control rejections charged to shard `shard` so far.
    pub fn admission_rejected(&self, shard: usize) -> u64 {
        self.lanes[shard].admission_rejected.load(Ordering::Relaxed)
    }

    /// Messages currently in flight (queued or pending in a shard),
    /// summed over the per-shard gauges.
    pub fn in_flight(&self) -> u64 {
        self.lanes
            .iter()
            .map(|lane| lane.in_flight.load(Ordering::Acquire))
            .sum()
    }

    /// Request chip faults on one shard's switch (an empty vector clears
    /// them). The shard's worker applies the change at its next step.
    pub fn inject_faults(&self, shard: usize, faults: Vec<ChipFault>) {
        let lane = &self.lanes[shard];
        *lane.fault_signal.lock().expect("fault signal") = Some(faults);
        lane.fault_pending.store(true, Ordering::Release);
    }

    /// Whether a shard's health monitor has quarantined it (as last
    /// published by its worker).
    pub fn shard_quarantined(&self, shard: usize) -> bool {
        self.lanes[shard].quarantined.load(Ordering::Acquire)
    }

    /// Close every ingress queue: producers are refused from now on,
    /// workers drain their backlogs and then report
    /// [`WorkerStep::Done`].
    pub fn close(&self) {
        for lane in &self.lanes {
            lane.queue.close();
        }
    }

    /// Steer a preferred placement away from quarantined shards.
    fn steer(&self, preferred: usize) -> usize {
        steer_scan(preferred, self.config.shards, |idx| {
            self.lanes[idx].quarantined.load(Ordering::Acquire)
        })
    }

    /// Place a message and advance the round-robin cursor.
    fn place(&self, source: usize) -> usize {
        let cursor = self.rr_cursor.fetch_add(1, Ordering::Relaxed);
        self.steer(
            self.config
                .placement
                .place(source, cursor, self.config.shards),
        )
    }

    /// One non-blocking submission step: placement, admission control,
    /// then a [`TryPush`] on the chosen queue.
    pub fn try_submit(&self, message: Message) -> SubmitStep {
        let shard = self.place(message.source);
        if let Some(limit) = self.config.admission_limit {
            if self.in_flight() >= limit as u64 {
                self.lanes[shard]
                    .admission_rejected
                    .fetch_add(1, Ordering::Relaxed);
                return SubmitStep::Done(SubmitOutcome::Rejected);
            }
        }
        self.offer(message, shard)
    }

    /// Re-offer a message a previous step handed back as
    /// [`SubmitStep::Blocked`]. Skips placement and admission — the
    /// message already holds a slot on `shard`'s queue order, exactly as
    /// a producer blocked on the queue's condvar does.
    pub fn retry_submit(&self, message: Message, shard: usize) -> SubmitStep {
        self.offer(message, shard)
    }

    fn offer(&self, message: Message, shard: usize) -> SubmitStep {
        let lane = &self.lanes[shard];
        // Count the message in flight *before* it becomes poppable: a fast
        // worker could otherwise complete (and decrement) it first and wrap
        // the gauge below zero.
        lane.in_flight.fetch_add(1, Ordering::AcqRel);
        match lane.queue.try_push(message, self.config.backpressure) {
            TryPush::Enqueued => SubmitStep::Done(SubmitOutcome::Accepted),
            // A shed swaps one queued message for another that will never
            // complete: net in-flight change is zero, so undo our add.
            TryPush::EnqueuedAfterShed => {
                lane.in_flight.fetch_sub(1, Ordering::AcqRel);
                SubmitStep::Done(SubmitOutcome::AcceptedAfterShed)
            }
            TryPush::Rejected => {
                lane.in_flight.fetch_sub(1, Ordering::AcqRel);
                SubmitStep::Done(SubmitOutcome::Rejected)
            }
            TryPush::WouldBlock(message) => {
                lane.in_flight.fetch_sub(1, Ordering::AcqRel);
                SubmitStep::Blocked { message, shard }
            }
        }
    }

    /// One non-blocking *frame* submission: reserve a round-robin cursor
    /// block for the whole frame (one `fetch_add` instead of one per
    /// message — the deficit-round-robin spread: message `i` of the frame
    /// takes cursor slot `cursor + i`, striding the frame across every
    /// healthy shard), group by shard, then land each group with a single
    /// ring publication and a single in-flight adjustment.
    ///
    /// Observationally this is the per-message admit state machine run
    /// `messages.len()` times; only the atomics are amortized.
    pub fn try_submit_batch(&self, messages: Vec<Message>) -> BatchSubmit {
        let len = messages.len();
        let mut result = BatchSubmit::default();
        if len == 0 {
            return result;
        }
        // Admission control at frame grain: one gauge read bounds the
        // whole frame (the per-message path re-reads per message; both
        // are races against concurrent completions, and conservation
        // charges refusals identically).
        let admitted = match self.config.admission_limit {
            Some(limit) => ((limit as u64).saturating_sub(self.in_flight()) as usize).min(len),
            None => len,
        };
        let cursor = self.rr_cursor.fetch_add(len, Ordering::Relaxed);
        let mut groups: Vec<Vec<Message>> = vec![Vec::new(); self.config.shards];
        for (i, message) in messages.into_iter().enumerate() {
            let shard = self.steer(self.config.placement.place(
                message.source,
                cursor.wrapping_add(i),
                self.config.shards,
            ));
            if i < admitted {
                groups[shard].push(message);
            } else {
                self.lanes[shard]
                    .admission_rejected
                    .fetch_add(1, Ordering::Relaxed);
                result.rejected += 1;
            }
        }
        for (shard, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let submitted = group.len() as u64;
            let lane = &self.lanes[shard];
            lane.in_flight.fetch_add(submitted, Ordering::AcqRel);
            let push = lane.queue.try_push_batch(group, self.config.backpressure);
            // Undo the gauge for everything that will never complete:
            // refusals, hand-backs, and the messages a shed evicted.
            let undo = submitted - push.enqueued as u64 + push.shed;
            if undo > 0 {
                lane.in_flight.fetch_sub(undo, Ordering::AcqRel);
            }
            result.accepted += push.enqueued as u64;
            result.shed += push.shed;
            result.rejected += push.rejected as u64;
            result
                .blocked
                .extend(push.blocked.into_iter().map(|message| (message, shard)));
        }
        result
    }

    /// Submit one routing request, blocking while the target queue is
    /// full under [`Backpressure::Block`](crate::Backpressure). The
    /// threaded service's `submit`.
    pub fn submit_blocking(&self, message: Message) -> SubmitOutcome {
        match self.try_submit(message) {
            SubmitStep::Done(outcome) => outcome,
            SubmitStep::Blocked { message, shard } => {
                let lane = &self.lanes[shard];
                lane.in_flight.fetch_add(1, Ordering::AcqRel);
                match lane.queue.push(message, self.config.backpressure) {
                    PushOutcome::Enqueued => SubmitOutcome::Accepted,
                    PushOutcome::EnqueuedAfterShed => {
                        lane.in_flight.fetch_sub(1, Ordering::AcqRel);
                        SubmitOutcome::AcceptedAfterShed
                    }
                    PushOutcome::Rejected => {
                        lane.in_flight.fetch_sub(1, Ordering::AcqRel);
                        SubmitOutcome::Rejected
                    }
                }
            }
        }
    }

    /// Submit a whole frame, blocking under
    /// [`Backpressure::Block`](crate::Backpressure) until every message
    /// is placed (or the queues close, which rejects the remainder). The
    /// threaded service's `submit_batch`; [`BatchSubmit::blocked`] is
    /// always empty on return.
    pub fn submit_batch_blocking(&self, messages: Vec<Message>) -> BatchSubmit {
        let mut result = self.try_submit_batch(messages);
        if result.blocked.is_empty() {
            return result;
        }
        let mut groups: Vec<Vec<Message>> = vec![Vec::new(); self.config.shards];
        for (message, shard) in std::mem::take(&mut result.blocked) {
            groups[shard].push(message);
        }
        for (shard, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let submitted = group.len() as u64;
            let lane = &self.lanes[shard];
            lane.in_flight.fetch_add(submitted, Ordering::AcqRel);
            let push = lane.queue.push_batch(group, self.config.backpressure);
            let undo = submitted - push.enqueued as u64 + push.shed;
            if undo > 0 {
                lane.in_flight.fetch_sub(undo, Ordering::AcqRel);
            }
            result.accepted += push.enqueued as u64;
            result.shed += push.shed;
            result.rejected += push.rejected as u64;
        }
        result
    }

    /// Fold shard `shard`'s queue-side counters (and admission
    /// rejections) into `metrics`.
    ///
    /// This is the **single** fold site: every snapshot path — the live
    /// [`FabricService::snapshot`], the drain-time merge, and the
    /// simulation harness's ledger — goes through it exactly once per
    /// shard per snapshot, against a fresh (un-folded) copy of the
    /// worker's metrics. Folding twice would double-count queue-level
    /// rejected/shed against `offered` and break conservation; the drain
    /// path asserts the identity in debug builds.
    pub fn fold_queue_counters(&self, shard: usize, metrics: &mut ShardMetrics) {
        let (offered, rejected, shed) = self.lanes[shard].queue.counters();
        let admission = self.lanes[shard].admission_rejected.load(Ordering::Relaxed);
        metrics.offered += offered + admission;
        metrics.rejected += rejected + admission;
        metrics.shed += shed;
    }

    /// A live snapshot: each worker's last *published* per-frame metrics
    /// with the queue-side counters folded in (exactly once — see
    /// [`ServiceCore::fold_queue_counters`]), plus the summed in-flight
    /// gauge. Counter reads are not mutually atomic while workers run, so
    /// a live snapshot's conservation identity may be off by the frames
    /// in progress; the drain-time snapshot is exact.
    pub fn snapshot(&self) -> FabricSnapshot {
        let mut shards = Vec::with_capacity(self.lanes.len());
        for (i, lane) in self.lanes.iter().enumerate() {
            let mut metrics = lane.published.lock().expect("published metrics").clone();
            self.fold_queue_counters(i, &mut metrics);
            shards.push(metrics);
        }
        FabricSnapshot {
            shards,
            in_flight: self.in_flight(),
        }
    }
}

/// What one worker step did.
#[derive(Debug)]
pub enum WorkerStep {
    /// Executed one batched routing frame.
    Frame(FrameRun),
    /// Nothing to do right now (queue empty, nothing pending). A
    /// simulated worker is re-stepped when work arrives; a threaded one
    /// never sees this (it blocks instead).
    Idle,
    /// Queue closed and drained, backlog empty: the worker is finished.
    Done,
}

/// One shard's serving loop as a single-step state machine: apply any
/// pending fault signal, drain the ring in one frame-sized burst, run
/// one batched frame, and retire the frame against the lane — one gauge
/// decrement, one metrics publication, a quarantine store only on
/// transitions. Between the burst pop and the frame retirement the hot
/// path touches no cross-thread state at all.
pub struct WorkerCore {
    shard: Shard,
    lane: Arc<ShardLane>,
    batch_window: usize,
    /// Last quarantine value published, so the flag is stored only on
    /// transitions (placement reads it from every producer).
    quarantine_published: bool,
    drain_frames: u64,
}

impl WorkerCore {
    /// The shard this core serves (metrics, health, pending state).
    pub fn shard(&self) -> &Shard {
        &self.shard
    }

    /// Whether a step right now would make progress: a fault signal is
    /// pending, messages are queued or pending, or close has been
    /// requested (so the step would resolve to [`WorkerStep::Done`]).
    /// The simulation scheduler's readiness predicate for a worker.
    pub fn ready(&self) -> bool {
        self.lane.fault_pending.load(Ordering::Acquire)
            || self.shard.pending_len() > 0
            || !self.lane.queue.is_empty()
            || self.lane.queue.is_closed()
    }

    /// One non-blocking worker step.
    pub fn step(&mut self) -> WorkerStep {
        self.step_inner(false)
    }

    /// One worker step that blocks while there is nothing to do — the
    /// body of the threaded worker loop. Never returns
    /// [`WorkerStep::Idle`] with messages outstanding; returns
    /// [`WorkerStep::Done`] once the queue is closed and everything has
    /// drained.
    pub fn step_blocking(&mut self) -> WorkerStep {
        self.step_inner(true)
    }

    fn step_inner(&mut self, block: bool) -> WorkerStep {
        if self.lane.fault_pending.load(Ordering::Acquire) {
            if let Some(faults) = self.lane.fault_signal.lock().expect("fault signal").take() {
                self.shard.set_faults(faults);
            }
            self.lane.fault_pending.store(false, Ordering::Release);
        }
        let fresh = if self.shard.pending_len() == 0 {
            if block {
                match self.lane.queue.pop_batch_blocking(self.batch_window) {
                    Some(batch) => batch,
                    // Closed and empty, nothing pending: done.
                    None => return WorkerStep::Done,
                }
            } else {
                let batch = self.lane.queue.try_pop_batch(self.batch_window);
                if batch.is_empty() {
                    return if self.lane.queue.is_closed() {
                        WorkerStep::Done
                    } else {
                        WorkerStep::Idle
                    };
                }
                batch
            }
        } else {
            self.lane.queue.try_pop_batch(self.batch_window)
        };
        for message in fresh {
            self.shard.accept(message);
        }
        if self.shard.pending_len() == 0 {
            return WorkerStep::Idle;
        }
        let run = self.shard.run_frame();
        let quarantined = self.shard.is_quarantined();
        if quarantined != self.quarantine_published {
            self.quarantine_published = quarantined;
            self.lane.quarantined.store(quarantined, Ordering::Release);
        }
        // One metrics publication per frame keeps live snapshots fresh
        // without any per-message shared-state traffic. Publish *before*
        // the gauge decrement: a snapshot that observes the gauge at zero
        // is then guaranteed to see the metrics covering every completed
        // frame, so quiescent live snapshots satisfy conservation exactly.
        *self.lane.published.lock().expect("published metrics") = self.shard.metrics.clone();
        let completed = (run.delivered.len() + run.dropped.len()) as u64;
        if completed > 0 {
            self.lane.in_flight.fetch_sub(completed, Ordering::AcqRel);
            self.drain_frames = 0;
        } else {
            self.drain_frames += 1;
            assert!(
                self.drain_frames < DRAIN_FRAME_LIMIT,
                "shard {} made no progress for {DRAIN_FRAME_LIMIT} frames",
                self.shard.id()
            );
        }
        WorkerStep::Frame(run)
    }
}

/// A concurrent sharded switch-serving engine: [`ServiceCore`] plus one
/// OS thread per shard looping [`WorkerCore::step_blocking`].
pub struct FabricService {
    core: Arc<ServiceCore>,
    workers: Vec<JoinHandle<WorkerResult>>,
}

impl FabricService {
    /// Spawn `config.shards` workers over one shared switch. The first
    /// shard's construction compiles the datapath netlist (through the
    /// switch's shared elaboration cache); the rest reuse it, so startup
    /// cost is one compile regardless of shard count.
    pub fn start(switch: Arc<StagedSwitch>, config: FabricConfig) -> FabricService {
        let core = Arc::new(ServiceCore::new(config));
        let workers = (0..config.shards)
            .map(|id| {
                let mut worker = core.worker(id, Arc::clone(&switch));
                std::thread::Builder::new()
                    .name(format!("fabric-shard-{id}"))
                    .spawn(move || {
                        let mut deliveries = Vec::new();
                        loop {
                            match worker.step_blocking() {
                                WorkerStep::Frame(run) => deliveries.extend(run.delivered),
                                WorkerStep::Idle => {}
                                WorkerStep::Done => break,
                            }
                        }
                        WorkerResult {
                            metrics: worker.shard().metrics.clone(),
                            deliveries,
                        }
                    })
                    .expect("spawn fabric worker")
            })
            .collect();
        FabricService { core, workers }
    }

    /// Request chip faults on one shard's switch (an empty vector clears
    /// them). The shard's worker applies the change at its next loop
    /// iteration, so the effect lands within a frame or two of the call —
    /// this models a chip dying (or being hot-swapped) mid-run.
    pub fn inject_faults(&self, shard: usize, faults: Vec<ChipFault>) {
        self.core.inject_faults(shard, faults);
    }

    /// Whether a shard's health monitor has quarantined it (as last
    /// published by its worker).
    pub fn shard_quarantined(&self, shard: usize) -> bool {
        self.core.shard_quarantined(shard)
    }

    /// Submit one routing request from any thread. Under
    /// [`Backpressure::Block`](crate::Backpressure) this blocks while the
    /// target queue is full; after [`FabricService::drain`] has begun it
    /// returns [`SubmitOutcome::Rejected`].
    pub fn submit(&self, message: Message) -> SubmitOutcome {
        self.core.submit_blocking(message)
    }

    /// Submit a whole frame of routing requests from any thread with one
    /// placement-cursor reservation, one ring publication per target
    /// shard, and one in-flight adjustment per target shard. Under
    /// [`Backpressure::Block`](crate::Backpressure) this blocks until the
    /// whole frame is placed (or drain begins, which rejects the
    /// remainder).
    pub fn submit_batch(&self, messages: Vec<Message>) -> BatchSubmit {
        self.core.submit_batch_blocking(messages)
    }

    /// Messages currently in flight (queued or pending in a shard).
    pub fn in_flight(&self) -> u64 {
        self.core.in_flight()
    }

    /// A live snapshot of the running service: each worker's last
    /// published per-frame metrics, queue counters folded in exactly
    /// once. See [`ServiceCore::snapshot`].
    pub fn snapshot(&self) -> FabricSnapshot {
        self.core.snapshot()
    }

    /// Graceful shutdown: refuse new work, let every worker finish its
    /// backlog, join them, and merge queue-side counters into the
    /// per-shard metrics (exactly once per shard — the workers' own
    /// metrics never include queue-side counts).
    pub fn drain(self) -> FabricReport {
        self.core.close();
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut completions = Vec::new();
        for (i, worker) in self.workers.into_iter().enumerate() {
            let mut result = worker.join().expect("fabric worker panicked");
            self.core.fold_queue_counters(i, &mut result.metrics);
            completions.append(&mut result.deliveries);
            shards.push(result.metrics);
        }
        let snapshot = FabricSnapshot {
            shards,
            in_flight: 0,
        };
        // The drain-time conservation identity — every offered message
        // delivered, rejected, shed, or retry-dropped — holds exactly
        // once the workers have joined; a double fold (or a missed one)
        // trips this immediately.
        debug_assert!(
            snapshot.conserved(),
            "drain snapshot violates conservation: {:?}",
            snapshot.totals()
        );
        FabricReport {
            snapshot,
            completions,
        }
    }
}
