//! The threaded fabric service: shard workers behind bounded MPSC
//! ingress queues.
//!
//! [`FabricService`] spawns one worker thread per shard. Producers call
//! [`FabricService::submit`] from any thread; placement and admission
//! control run on the producer's thread, then the message lands in the
//! target shard's [`IngressQueue`] under the configured backpressure
//! policy (a blocked producer really blocks). Each worker pulls fresh
//! messages, packs them with its retry backlog into batched routing
//! frames, and runs the compiled-datapath executor ([`Shard`]).
//! [`FabricService::drain`] closes every queue, lets the workers finish
//! their backlogs, joins them, and returns the merged report.
//!
//! Frame composition here depends on thread scheduling, so per-run
//! counters are *not* bit-reproducible — that is what the synchronous
//! [`Fabric`](crate::Fabric) is for. What the service does guarantee
//! (and the tests pin) is conservation — every offered message is
//! delivered, rejected, shed, or retry-dropped by drain — and payload
//! integrity end to end.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use concentrator::faults::ChipFault;
use concentrator::StagedSwitch;
use switchsim::Message;

use crate::config::FabricConfig;
use crate::engine::SubmitOutcome;
use crate::metrics::{FabricSnapshot, ShardMetrics};
use crate::queue::{IngressQueue, PushOutcome};
use crate::shard::{Delivery, Shard};

/// Frames a worker may spend clearing its backlog after close before the
/// service declares the switch unable to drain.
const DRAIN_FRAME_LIMIT: u64 = 1 << 22;

struct WorkerResult {
    metrics: ShardMetrics,
    deliveries: Vec<Delivery>,
}

/// The merged outcome of a service run, produced by
/// [`FabricService::drain`].
#[derive(Debug, Clone)]
pub struct FabricReport {
    /// Per-shard metrics (queue-side counters folded in); `in_flight` is
    /// zero — drain completes the backlog.
    pub snapshot: FabricSnapshot,
    /// Every delivery, grouped by shard in shard order.
    pub completions: Vec<Delivery>,
}

/// A pending fault-set change for one shard's worker: `None` means no
/// change requested; `Some(faults)` is applied (and taken) at the
/// worker's next loop iteration.
type FaultSignal = Arc<Mutex<Option<Vec<ChipFault>>>>;

/// A concurrent sharded switch-serving engine.
pub struct FabricService {
    config: FabricConfig,
    queues: Vec<Arc<IngressQueue>>,
    workers: Vec<JoinHandle<WorkerResult>>,
    rr_cursor: AtomicUsize,
    in_flight: Arc<AtomicU64>,
    admission_rejected: Vec<AtomicU64>,
    fault_signals: Vec<FaultSignal>,
    quarantined: Vec<Arc<AtomicBool>>,
}

impl FabricService {
    /// Spawn `config.shards` workers over one shared switch. The first
    /// shard's construction compiles the datapath netlist (through the
    /// switch's shared elaboration cache); the rest reuse it, so startup
    /// cost is one compile regardless of shard count.
    pub fn start(switch: Arc<StagedSwitch>, config: FabricConfig) -> FabricService {
        config.validate();
        let batch_window = switch.n.max(1);
        let in_flight = Arc::new(AtomicU64::new(0));
        let mut queues = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        let mut fault_signals = Vec::with_capacity(config.shards);
        let mut quarantined = Vec::with_capacity(config.shards);
        for id in 0..config.shards {
            let queue = Arc::new(IngressQueue::new(config.queue_capacity));
            let mut shard =
                Shard::new(id, Arc::clone(&switch), config.retry).with_health_policy(config.health);
            let signal: FaultSignal = Arc::new(Mutex::new(None));
            let flag = Arc::new(AtomicBool::new(false));
            let worker_queue = Arc::clone(&queue);
            let worker_in_flight = Arc::clone(&in_flight);
            let worker_signal = Arc::clone(&signal);
            let worker_flag = Arc::clone(&flag);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fabric-shard-{id}"))
                    .spawn(move || {
                        let deliveries = run_worker(
                            &mut shard,
                            &worker_queue,
                            &worker_in_flight,
                            batch_window,
                            &worker_signal,
                            &worker_flag,
                        );
                        WorkerResult {
                            metrics: shard.metrics.clone(),
                            deliveries,
                        }
                    })
                    .expect("spawn fabric worker"),
            );
            queues.push(queue);
            fault_signals.push(signal);
            quarantined.push(flag);
        }
        FabricService {
            config,
            queues,
            workers,
            rr_cursor: AtomicUsize::new(0),
            in_flight,
            admission_rejected: (0..config.shards).map(|_| AtomicU64::new(0)).collect(),
            fault_signals,
            quarantined,
        }
    }

    /// Request chip faults on one shard's switch (an empty vector clears
    /// them). The shard's worker applies the change at its next loop
    /// iteration, so the effect lands within a frame or two of the call —
    /// this models a chip dying (or being hot-swapped) mid-run.
    pub fn inject_faults(&self, shard: usize, faults: Vec<ChipFault>) {
        *self.fault_signals[shard].lock().expect("fault signal") = Some(faults);
    }

    /// Whether a shard's health monitor has quarantined it (as last
    /// published by its worker).
    pub fn shard_quarantined(&self, shard: usize) -> bool {
        self.quarantined[shard].load(Ordering::Acquire)
    }

    /// Steer a placement away from quarantined shards (same scan as the
    /// synchronous engine): keep the preferred shard when healthy, else
    /// the next healthy shard in a wrapping scan, else the preferred one.
    fn steer(&self, preferred: usize) -> usize {
        if !self.quarantined[preferred].load(Ordering::Acquire) {
            return preferred;
        }
        let shards = self.config.shards;
        (1..shards)
            .map(|step| (preferred + step) % shards)
            .find(|&idx| !self.quarantined[idx].load(Ordering::Acquire))
            .unwrap_or(preferred)
    }

    /// Submit one routing request from any thread. Under
    /// [`Backpressure::Block`](crate::Backpressure) this blocks while the
    /// target queue is full; after [`FabricService::drain`] has begun it
    /// returns [`SubmitOutcome::Rejected`].
    pub fn submit(&self, message: Message) -> SubmitOutcome {
        let cursor = self.rr_cursor.fetch_add(1, Ordering::Relaxed);
        let shard = self.steer(self.config.placement.place(
            message.source,
            cursor,
            self.config.shards,
        ));
        if let Some(limit) = self.config.admission_limit {
            if self.in_flight.load(Ordering::Acquire) >= limit as u64 {
                self.admission_rejected[shard].fetch_add(1, Ordering::Relaxed);
                return SubmitOutcome::Rejected;
            }
        }
        // Count the message in flight *before* it becomes poppable: a fast
        // worker could otherwise complete (and decrement) it first and wrap
        // the gauge below zero.
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        match self.queues[shard].push(message, self.config.backpressure) {
            PushOutcome::Enqueued => SubmitOutcome::Accepted,
            // A shed swaps one queued message for another that will never
            // complete: net in-flight change is zero, so undo our add.
            PushOutcome::EnqueuedAfterShed => {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                SubmitOutcome::AcceptedAfterShed
            }
            PushOutcome::Rejected => {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                SubmitOutcome::Rejected
            }
        }
    }

    /// Messages currently in flight (queued or pending in a shard).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Graceful shutdown: refuse new work, let every worker finish its
    /// backlog, join them, and merge queue-side counters into the
    /// per-shard metrics.
    pub fn drain(self) -> FabricReport {
        for queue in &self.queues {
            queue.close();
        }
        let mut shards = Vec::with_capacity(self.workers.len());
        let mut completions = Vec::new();
        for (i, worker) in self.workers.into_iter().enumerate() {
            let mut result = worker.join().expect("fabric worker panicked");
            let (offered, rejected, shed) = self.queues[i].counters();
            let admission = self.admission_rejected[i].load(Ordering::Relaxed);
            result.metrics.offered += offered + admission;
            result.metrics.rejected += rejected + admission;
            result.metrics.shed += shed;
            completions.append(&mut result.deliveries);
            shards.push(result.metrics);
        }
        FabricReport {
            snapshot: FabricSnapshot {
                shards,
                in_flight: 0,
            },
            completions,
        }
    }
}

/// The shard worker loop: pull fresh messages (blocking only when the
/// shard is otherwise idle), batch them with the retry backlog, run
/// frames, and account completed work against the global in-flight gauge.
fn run_worker(
    shard: &mut Shard,
    queue: &IngressQueue,
    in_flight: &AtomicU64,
    batch_window: usize,
    fault_signal: &Mutex<Option<Vec<ChipFault>>>,
    quarantined: &AtomicBool,
) -> Vec<Delivery> {
    let mut deliveries = Vec::new();
    let mut drain_frames = 0u64;
    loop {
        if let Some(faults) = fault_signal.lock().expect("fault signal").take() {
            shard.set_faults(faults);
        }
        let fresh = if shard.pending_len() == 0 {
            match queue.pop_batch_blocking(batch_window) {
                Some(batch) => batch,
                // Closed and empty, nothing pending: done.
                None => return deliveries,
            }
        } else {
            queue.try_pop_batch(batch_window)
        };
        for message in fresh {
            shard.accept(message);
        }
        if shard.pending_len() > 0 {
            let run = shard.run_frame();
            quarantined.store(shard.is_quarantined(), Ordering::Release);
            let completed = (run.delivered.len() + run.dropped.len()) as u64;
            deliveries.extend(run.delivered);
            if completed > 0 {
                in_flight.fetch_sub(completed, Ordering::AcqRel);
                drain_frames = 0;
            } else {
                drain_frames += 1;
                assert!(
                    drain_frames < DRAIN_FRAME_LIMIT,
                    "shard {} made no progress for {DRAIN_FRAME_LIMIT} frames",
                    shard.id()
                );
            }
        }
    }
}
