//! `fabric` — a sharded, batching concentrator-switch serving engine.
//!
//! The crates below this one answer "how do we build and evaluate one
//! partial concentrator switch"; `fabric` answers "how do we *serve*
//! one". Routing requests ([`switchsim::Message`]) are submitted to a
//! fabric, placed on a shard ([`Placement`]), admitted or refused
//! ([`FabricConfig::admission_limit`], [`Backpressure`]), and then
//! coalesced: each shard packs its pending requests one-per-input-wire
//! into a single routing frame, routes the batch through the shared
//! [`concentrator::StagedSwitch`], and streams every payload bit
//! through the *compiled* datapath netlist 64 lanes at a time
//! (`netlist::CompiledNetlist::eval_word_into`). One SWAR sweep thus
//! moves one bit-cycle of up to `n` messages — the batching win the
//! `fabric_bench` harness measures against a one-request-per-sweep
//! baseline.
//!
//! Losers of output contention are retried under a [`RetryBudget`]
//! (wire-compatible with [`switchsim::CongestionPolicy`] semantics),
//! and every shard keeps a [`ShardMetrics`] ledger — counters plus
//! log-bucketed wait histograms — that snapshots to JSON.
//!
//! Two execution modes share the same shard executor ([`Shard`]):
//!
//! * [`Fabric`] — synchronous and single-threaded; every counter is a
//!   pure function of the submission order, so runs are bit-reproducible.
//! * [`FabricService`] — one worker thread per shard behind bounded
//!   [`IngressQueue`]s; producers get real blocking backpressure, and
//!   drain is graceful (close, finish backlogs, join, merge metrics).
//!
//! Both modes are fault-aware: chip faults
//! ([`concentrator::faults::ChipFault`]) can be injected on a shard
//! mid-run (`inject_faults`), which swaps the shard onto a
//! fault-compiled netlist overlay. A per-shard delivery-health EWMA
//! ([`HealthPolicy`]) compares delivered counts against the analytic
//! capacity bound, quarantines degraded shards (placement steers new
//! traffic to healthy ones while the sick shard drains its backlog),
//! and recovers them with hysteresis once repaired.
//!
//! The service is also *elastic* ([`reconfig`]): shards can be added
//! and removed live, a recompiled switch can be hot-swapped under a
//! two-phase epoch handoff, and an [`SloController`] can retarget the
//! global admission limit from live wait histograms — all without
//! violating the ledger.
//!
//! The conservation identity both modes guarantee at drain:
//!
//! ```text
//! offered = delivered + rejected + shed + retry_dropped + in_flight
//! ```

pub mod config;
pub mod engine;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod reconfig;
pub mod scaling;
pub mod service;
pub mod shard;
pub mod trace;

pub use concentrator::clock::{Clock, VirtualClock, WallClock};
pub use config::{steer_scan, Backpressure, FabricConfig, HealthPolicy, Placement, RetryBudget};
pub use engine::{Fabric, SubmitOutcome};
pub use loadgen::{
    drive_service, drive_service_batched, drive_sync, drive_sync_faulted, drive_sync_unbatched,
    producer_script, producer_script_frames, DriveReport, FaultEvent, LoadPlan,
};
pub use metrics::{FabricSnapshot, LogHistogram, ShardMetrics};
pub use queue::{BatchPush, IngressQueue, PushOutcome, TryPush};
pub use reconfig::{LaneState, SloController, SloDecision, SloPolicy};
pub use scaling::{ladder, ScalingLadder, ScalingPoint, ShardScaling};
pub use service::{
    BatchSubmit, FabricReport, FabricService, ServiceCore, SubmitStep, WorkerCore, WorkerStep,
};
pub use shard::{Delivery, FrameRun, Shard};
pub use trace::{
    adversarial_trace, drive_service_trace, drive_sync_trace, AdversarialPlan, SourceSpace, Trace,
    TraceCursor, TraceError, TraceFeeder, TraceFlavor, TraceModel, TraceReader, TraceRecord,
    TraceWriter,
};
// The message type producers submit, re-exported so layered consumers
// (the tier tree) can name the whole serving seam from one crate.
pub use switchsim::Message;
