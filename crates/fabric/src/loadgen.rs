//! Closed-loop load generation: drive a fabric with `switchsim`'s
//! synthetic traffic sources.
//!
//! Two harnesses share one workload description ([`LoadPlan`]):
//!
//! * [`drive_sync`] / [`drive_sync_unbatched`] push a deterministic
//!   workload through the synchronous [`Fabric`] — same seed, same
//!   config ⇒ bit-identical snapshot. The unbatched variant is the
//!   one-request-per-sweep baseline the batching executor is measured
//!   against.
//! * [`drive_service`] runs `producers` worker threads against a live
//!   [`FabricService`], each with its own seeded generator, submitting
//!   under the service's real backpressure (a blocked producer blocks —
//!   the closed loop).

use concentrator::faults::ChipFault;
use serde::{Deserialize, Serialize};
use switchsim::traffic::{TrafficGenerator, TrafficModel};
use switchsim::Message;

use crate::engine::{Fabric, SubmitOutcome};
use crate::metrics::FabricSnapshot;
use crate::service::FabricService;

/// Frames the drain phase may take before the harness gives up.
const DRAIN_LIMIT: u64 = 1 << 22;

/// One workload: a traffic model played for a number of frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPlan {
    /// Per-frame offer model over the switch's `n` inputs.
    pub model: TrafficModel,
    /// Payload size per message.
    pub payload_bytes: usize,
    /// Generator seed (the determinism claims key off this).
    pub seed: u64,
    /// Generation frames (the fabric may run more frames to drain).
    pub frames: usize,
}

/// What a synchronous drive did.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveReport {
    /// Fresh messages the generator produced.
    pub generated: u64,
    /// Deliveries collected (payloads already reassembled and checked by
    /// the shard executor's debug assertions).
    pub delivered: u64,
    /// Final metrics; `in_flight` is zero (the drive always drains).
    pub snapshot: FabricSnapshot,
}

/// Drive `fabric` closed-loop for `plan.frames` generation frames, then
/// drain. Messages bounced by blocking backpressure are held by the
/// "producer" and re-offered after the next tick, oldest first.
pub fn drive_sync(fabric: &mut Fabric, inputs: usize, plan: &LoadPlan) -> DriveReport {
    let mut generator = TrafficGenerator::new(plan.model, inputs, plan.payload_bytes, plan.seed);
    let mut held: Vec<Message> = Vec::new();
    let mut generated = 0u64;
    for _ in 0..plan.frames {
        let fresh = generator.next_frame();
        generated += fresh.len() as u64;
        held = offer_all(fabric, held.into_iter().chain(fresh));
        fabric.tick();
    }
    // Drain: keep re-offering the held backlog while the queues empty.
    let mut drain_frames = 0u64;
    while !held.is_empty() || fabric.in_flight() > 0 {
        assert!(
            drain_frames < DRAIN_LIMIT,
            "sync drive failed to drain (held {})",
            held.len()
        );
        held = offer_all(fabric, held.into_iter());
        fabric.tick();
        drain_frames += 1;
    }
    let delivered = fabric.take_completions().len() as u64;
    DriveReport {
        generated,
        delivered,
        snapshot: fabric.snapshot(),
    }
}

/// The no-batching baseline: every message gets a frame (and therefore at
/// least one compiled sweep) of its own. Same workload, same delivery
/// guarantees — only the coalescing is disabled.
pub fn drive_sync_unbatched(fabric: &mut Fabric, inputs: usize, plan: &LoadPlan) -> DriveReport {
    let mut generator = TrafficGenerator::new(plan.model, inputs, plan.payload_bytes, plan.seed);
    let mut generated = 0u64;
    for _ in 0..plan.frames {
        for mut message in generator.next_frame() {
            generated += 1;
            while let SubmitOutcome::Backpressured(back) = fabric.submit(message) {
                message = back;
                fabric.tick();
            }
            fabric.tick();
        }
    }
    fabric.drain(DRAIN_LIMIT);
    let delivered = fabric.take_completions().len() as u64;
    DriveReport {
        generated,
        delivered,
        snapshot: fabric.snapshot(),
    }
}

/// A scheduled fault change: at the start of generation frame `frame`,
/// replace shard `shard`'s fault set with `faults` (empty = repair).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Generation frame (0-based) at which the change lands.
    pub frame: usize,
    /// Target shard.
    pub shard: usize,
    /// The shard's new complete fault set.
    pub faults: Vec<ChipFault>,
}

/// [`drive_sync`] with a fault schedule: each [`FaultEvent`] is injected
/// at its frame boundary, so a fixed `(plan, schedule)` pair replays the
/// same failure story bit-for-bit. Events must be sorted by frame.
pub fn drive_sync_faulted(
    fabric: &mut Fabric,
    inputs: usize,
    plan: &LoadPlan,
    schedule: &[FaultEvent],
) -> DriveReport {
    assert!(
        schedule.windows(2).all(|w| w[0].frame <= w[1].frame),
        "fault schedule must be sorted by frame"
    );
    let mut generator = TrafficGenerator::new(plan.model, inputs, plan.payload_bytes, plan.seed);
    let mut held: Vec<Message> = Vec::new();
    let mut generated = 0u64;
    let mut next_event = 0usize;
    for frame in 0..plan.frames {
        while next_event < schedule.len() && schedule[next_event].frame <= frame {
            let event = &schedule[next_event];
            fabric.inject_faults(event.shard, event.faults.clone());
            next_event += 1;
        }
        let fresh = generator.next_frame();
        generated += fresh.len() as u64;
        held = offer_all(fabric, held.into_iter().chain(fresh));
        fabric.tick();
    }
    // Late events (frame ≥ plan.frames) land before the drain begins.
    for event in &schedule[next_event..] {
        fabric.inject_faults(event.shard, event.faults.clone());
    }
    let mut drain_frames = 0u64;
    while !held.is_empty() || fabric.in_flight() > 0 {
        assert!(
            drain_frames < DRAIN_LIMIT,
            "faulted sync drive failed to drain (held {})",
            held.len()
        );
        held = offer_all(fabric, held.into_iter());
        fabric.tick();
        drain_frames += 1;
    }
    let delivered = fabric.take_completions().len() as u64;
    DriveReport {
        generated,
        delivered,
        snapshot: fabric.snapshot(),
    }
}

fn offer_all(fabric: &mut Fabric, messages: impl Iterator<Item = Message>) -> Vec<Message> {
    let mut held = Vec::new();
    for message in messages {
        if let SubmitOutcome::Backpressured(back) = fabric.submit(message) {
            held.push(back);
        }
    }
    held
}

/// The exact message sequence producer `producer` submits when playing
/// `plan` against a switch with `inputs` inputs: its own seeded generator
/// (`plan.seed + producer`) and a disjoint id space (producer index in
/// the id's top bits). A pure function of its arguments — the threaded
/// [`drive_service`] and the deterministic simulation harness replay
/// identical workloads through it.
pub fn producer_script(plan: &LoadPlan, inputs: usize, producer: usize) -> Vec<Message> {
    let mut generator = TrafficGenerator::new(
        plan.model,
        inputs,
        plan.payload_bytes,
        plan.seed.wrapping_add(producer as u64),
    );
    let mut script = Vec::new();
    for _ in 0..plan.frames {
        for mut message in generator.next_frame() {
            message.id |= (producer as u64) << 48;
            script.push(message);
        }
    }
    script
}

/// [`producer_script`] with the frame boundaries kept: element `f` is
/// the messages producer `producer` generates in frame `f` (possibly
/// empty). Flattening it yields exactly `producer_script`'s sequence —
/// the batched and per-message drive paths submit identical workloads.
pub fn producer_script_frames(
    plan: &LoadPlan,
    inputs: usize,
    producer: usize,
) -> Vec<Vec<Message>> {
    let mut generator = TrafficGenerator::new(
        plan.model,
        inputs,
        plan.payload_bytes,
        plan.seed.wrapping_add(producer as u64),
    );
    let mut frames = Vec::with_capacity(plan.frames);
    for _ in 0..plan.frames {
        let mut frame = generator.next_frame();
        for message in &mut frame {
            message.id |= (producer as u64) << 48;
        }
        frames.push(frame);
    }
    frames
}

/// Drive a live [`FabricService`] from `producers` concurrent threads,
/// each submitting its [`producer_script`] in order. Returns the total
/// number of messages generated; call [`FabricService::drain`]
/// afterwards for the report.
pub fn drive_service(
    service: &FabricService,
    producers: usize,
    plan: &LoadPlan,
    inputs: usize,
) -> u64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                scope.spawn(move || {
                    let script = producer_script(plan, inputs, p);
                    let generated = script.len() as u64;
                    for message in script {
                        service.submit(message);
                    }
                    generated
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// [`drive_service`] through the frame-batched admission path: each
/// producer submits whole generation frames via
/// [`FabricService::submit_batch`] — one placement-cursor reservation
/// and one ring publication per target shard per frame, instead of the
/// per-message fast path. Same workload, same conservation guarantees.
pub fn drive_service_batched(
    service: &FabricService,
    producers: usize,
    plan: &LoadPlan,
    inputs: usize,
) -> u64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                scope.spawn(move || {
                    let frames = producer_script_frames(plan, inputs, p);
                    let mut generated = 0u64;
                    for frame in frames {
                        generated += frame.len() as u64;
                        service.submit_batch(frame);
                    }
                    generated
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FabricConfig;
    use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
    use std::sync::Arc;

    #[test]
    fn sync_drive_drains_and_conserves() {
        let switch = Arc::new(
            RevsortSwitch::new(16, 8, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        );
        let mut fabric = Fabric::new(switch, FabricConfig::new(2));
        let plan = LoadPlan {
            model: TrafficModel::Bernoulli { p: 0.6 },
            payload_bytes: 2,
            seed: 42,
            frames: 50,
        };
        let report = drive_sync(&mut fabric, 16, &plan);
        assert!(report.generated > 0);
        assert!(report.snapshot.conserved());
        assert_eq!(report.snapshot.in_flight, 0);
        // Unlimited retries + drain: everything generated is delivered.
        assert_eq!(report.delivered, report.generated);
    }

    #[test]
    fn unbatched_baseline_spends_a_sweep_per_request() {
        let switch = Arc::new(
            RevsortSwitch::new(16, 8, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        );
        let mut fabric = Fabric::new(Arc::clone(&switch), FabricConfig::new(1));
        let plan = LoadPlan {
            model: TrafficModel::Bernoulli { p: 0.5 },
            payload_bytes: 8, // 64 payload cycles = exactly one sweep
            seed: 7,
            frames: 20,
        };
        let report = drive_sync_unbatched(&mut fabric, 16, &plan);
        let totals = report.snapshot.totals();
        assert_eq!(report.delivered, report.generated);
        assert_eq!(totals.sweeps, report.generated, "one sweep per request");
    }
}
