//! Bounded multi-producer ingress queues for the threaded service.
//!
//! One queue sits in front of each shard worker. Producers apply the
//! configured [`Backpressure`] policy at the bound: block on a condvar,
//! shed the oldest queued message, or reject. `close` starts a graceful
//! drain: producers are refused from then on, the consumer keeps popping
//! until the queue is empty, and blocked producers wake immediately.
//!
//! Built on `std::sync::{Mutex, Condvar}` — the vendored `parking_lot`
//! shim deliberately exposes no condition variables.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use switchsim::Message;

use crate::config::Backpressure;

/// What a push did. Mirrors [`SubmitOutcome`](crate::SubmitOutcome) minus
/// the synchronous-only backpressure hand-back (a blocked producer really
/// blocks here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued.
    Enqueued,
    /// Enqueued after dropping the oldest queued message.
    EnqueuedAfterShed,
    /// Refused (full queue under [`Backpressure::Reject`], or closed).
    Rejected,
}

#[derive(Debug, Default)]
struct QueueState {
    messages: VecDeque<Message>,
    closed: bool,
    /// Producer-side counters, folded into the shard's metrics at drain.
    offered: u64,
    rejected: u64,
    shed: u64,
}

/// A bounded MPSC ingress queue with pluggable backpressure.
#[derive(Debug)]
pub struct IngressQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl IngressQueue {
    /// An empty open queue holding at most `capacity` messages.
    pub fn new(capacity: usize) -> IngressQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        IngressQueue {
            state: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Push one message under `policy`. [`Backpressure::Block`] waits for
    /// space (or for close, which rejects).
    pub fn push(&self, message: Message, policy: Backpressure) -> PushOutcome {
        let mut state = self.state.lock().expect("ingress queue poisoned");
        state.offered += 1;
        loop {
            if state.closed {
                state.rejected += 1;
                return PushOutcome::Rejected;
            }
            if state.messages.len() < self.capacity {
                state.messages.push_back(message);
                self.not_empty.notify_one();
                return PushOutcome::Enqueued;
            }
            match policy {
                Backpressure::Block => {
                    state = self.not_full.wait(state).expect("ingress queue poisoned");
                }
                Backpressure::Reject => {
                    state.rejected += 1;
                    return PushOutcome::Rejected;
                }
                Backpressure::ShedOldest => {
                    state.messages.pop_front();
                    state.shed += 1;
                    state.messages.push_back(message);
                    self.not_empty.notify_one();
                    return PushOutcome::EnqueuedAfterShed;
                }
            }
        }
    }

    /// Pop up to `max` messages, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed **and** empty.
    pub fn pop_batch_blocking(&self, max: usize) -> Option<Vec<Message>> {
        let mut state = self.state.lock().expect("ingress queue poisoned");
        loop {
            if !state.messages.is_empty() {
                return Some(self.take(&mut state, max));
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("ingress queue poisoned");
        }
    }

    /// Pop up to `max` messages without blocking; an empty vec means the
    /// queue is currently empty (open or closed).
    pub fn try_pop_batch(&self, max: usize) -> Vec<Message> {
        let mut state = self.state.lock().expect("ingress queue poisoned");
        self.take(&mut state, max)
    }

    fn take(&self, state: &mut QueueState, max: usize) -> Vec<Message> {
        let count = state.messages.len().min(max);
        let batch: Vec<Message> = state.messages.drain(..count).collect();
        if !batch.is_empty() {
            self.not_full.notify_all();
        }
        batch
    }

    /// Close the queue: producers are refused from now on (blocked ones
    /// wake and get [`PushOutcome::Rejected`]); the consumer drains what
    /// remains.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("ingress queue poisoned");
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("ingress queue poisoned")
            .messages
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer-side counters `(offered, rejected, shed)` accumulated so
    /// far; the service folds these into the shard's metrics at drain.
    pub fn counters(&self) -> (u64, u64, u64) {
        let state = self.state.lock().expect("ingress queue poisoned");
        (state.offered, state.rejected, state.shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn msg(id: u64) -> Message {
        Message::new(id, 0, vec![id as u8])
    }

    #[test]
    fn fifo_order_and_batch_pop() {
        let q = IngressQueue::new(8);
        for i in 0..5 {
            assert_eq!(q.push(msg(i), Backpressure::Reject), PushOutcome::Enqueued);
        }
        let batch = q.try_pop_batch(3);
        let ids: Vec<u64> = batch.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn reject_and_shed_at_capacity() {
        let q = IngressQueue::new(2);
        q.push(msg(0), Backpressure::Reject);
        q.push(msg(1), Backpressure::Reject);
        assert_eq!(q.push(msg(2), Backpressure::Reject), PushOutcome::Rejected);
        assert_eq!(
            q.push(msg(3), Backpressure::ShedOldest),
            PushOutcome::EnqueuedAfterShed
        );
        let ids: Vec<u64> = q.try_pop_batch(9).iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(q.counters(), (4, 1, 1));
    }

    #[test]
    fn blocked_producer_wakes_on_pop() {
        let q = Arc::new(IngressQueue::new(1));
        q.push(msg(0), Backpressure::Block);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(msg(1), Backpressure::Block))
        };
        // Give the producer time to block, then make room.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.try_pop_batch(1).len(), 1);
        assert_eq!(producer.join().unwrap(), PushOutcome::Enqueued);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn close_wakes_blocked_producer_with_rejection() {
        let q = Arc::new(IngressQueue::new(1));
        q.push(msg(0), Backpressure::Block);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(msg(1), Backpressure::Block))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), PushOutcome::Rejected);
        // The consumer still drains the remaining message, then sees None.
        assert_eq!(q.pop_batch_blocking(4).map(|b| b.len()), Some(1));
        assert_eq!(q.pop_batch_blocking(4), None);
    }

    #[test]
    fn consumer_blocks_until_push() {
        let q = Arc::new(IngressQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch_blocking(4))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.push(msg(7), Backpressure::Block);
        let batch = consumer.join().unwrap().expect("open queue yields batch");
        assert_eq!(batch[0].id, 7);
    }
}
