//! Bounded multi-producer ingress queues for the threaded service.
//!
//! One queue sits in front of each shard worker. Producers apply the
//! configured [`Backpressure`] policy at the bound: block on a condvar,
//! shed the oldest queued message, or reject. `close` starts a graceful
//! drain: producers are refused from then on, the consumer keeps popping
//! until the queue is empty, and blocked producers wake immediately.
//!
//! Every state transition is also reachable without blocking:
//! [`IngressQueue::try_push`] returns [`TryPush::WouldBlock`] (handing the
//! message back) where [`IngressQueue::push`] would wait, and
//! [`IngressQueue::try_pop_batch`] plus [`IngressQueue::is_closed`] cover
//! the consumer side. The deterministic simulation harness drives the
//! queue exclusively through these non-blocking steps, so a seeded
//! scheduler — not the host OS — decides every interleaving; the blocking
//! entry points are thin condvar loops over the same admission logic.
//!
//! Built on `std::sync::{Mutex, Condvar}` — the vendored `parking_lot`
//! shim deliberately exposes no condition variables.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use switchsim::Message;

use crate::config::Backpressure;

/// What a blocking push did. Mirrors [`SubmitOutcome`](crate::SubmitOutcome)
/// minus the synchronous-only backpressure hand-back (a blocked producer
/// really blocks here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued.
    Enqueued,
    /// Enqueued after dropping the oldest queued message.
    EnqueuedAfterShed,
    /// Refused (full queue under [`Backpressure::Reject`], or closed).
    Rejected,
}

/// What a non-blocking push did: [`PushOutcome`] plus the would-block
/// hand-back a cooperative scheduler parks on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TryPush {
    /// Enqueued.
    Enqueued,
    /// Enqueued after dropping the oldest queued message.
    EnqueuedAfterShed,
    /// Refused (full queue under [`Backpressure::Reject`], or closed).
    Rejected,
    /// The queue is full under [`Backpressure::Block`]: the message is
    /// handed back; retry after the consumer pops or the queue closes.
    WouldBlock(Message),
}

#[derive(Debug, Default)]
struct QueueState {
    messages: VecDeque<Message>,
    closed: bool,
    /// Producer-side counters, folded into the shard's metrics at drain.
    /// Counted when a push resolves (enqueued, shed, or rejected) — a
    /// would-block hand-back counts nothing, since the producer still
    /// holds the message.
    offered: u64,
    rejected: u64,
    shed: u64,
}

/// A bounded MPSC ingress queue with pluggable backpressure.
#[derive(Debug)]
pub struct IngressQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl IngressQueue {
    /// An empty open queue holding at most `capacity` messages.
    ///
    /// # Panics
    /// If `capacity` is zero — a zero-capacity queue could admit nothing
    /// and would deadlock every blocking producer.
    pub fn new(capacity: usize) -> IngressQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        IngressQueue {
            state: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// One admission attempt under the lock — the single state machine
    /// both the blocking and non-blocking push share.
    fn admit(&self, state: &mut QueueState, message: Message, policy: Backpressure) -> TryPush {
        if state.closed {
            state.offered += 1;
            state.rejected += 1;
            return TryPush::Rejected;
        }
        if state.messages.len() < self.capacity {
            state.offered += 1;
            state.messages.push_back(message);
            self.not_empty.notify_one();
            return TryPush::Enqueued;
        }
        match policy {
            Backpressure::Block => TryPush::WouldBlock(message),
            Backpressure::Reject => {
                state.offered += 1;
                state.rejected += 1;
                TryPush::Rejected
            }
            Backpressure::ShedOldest => {
                state.offered += 1;
                state.messages.pop_front();
                state.shed += 1;
                state.messages.push_back(message);
                self.not_empty.notify_one();
                TryPush::EnqueuedAfterShed
            }
        }
    }

    /// Push one message under `policy` without ever blocking. Where
    /// [`IngressQueue::push`] would wait, this hands the message back as
    /// [`TryPush::WouldBlock`] and counts nothing.
    pub fn try_push(&self, message: Message, policy: Backpressure) -> TryPush {
        let mut state = self.state.lock().expect("ingress queue poisoned");
        self.admit(&mut state, message, policy)
    }

    /// Push one message under `policy`. [`Backpressure::Block`] waits for
    /// space (or for close, which rejects).
    pub fn push(&self, message: Message, policy: Backpressure) -> PushOutcome {
        let mut state = self.state.lock().expect("ingress queue poisoned");
        let mut message = message;
        loop {
            match self.admit(&mut state, message, policy) {
                TryPush::Enqueued => return PushOutcome::Enqueued,
                TryPush::EnqueuedAfterShed => return PushOutcome::EnqueuedAfterShed,
                TryPush::Rejected => return PushOutcome::Rejected,
                TryPush::WouldBlock(held) => {
                    message = held;
                    state = self.not_full.wait(state).expect("ingress queue poisoned");
                }
            }
        }
    }

    /// Pop up to `max` messages, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed **and** empty.
    pub fn pop_batch_blocking(&self, max: usize) -> Option<Vec<Message>> {
        let mut state = self.state.lock().expect("ingress queue poisoned");
        loop {
            if !state.messages.is_empty() {
                return Some(self.take(&mut state, max));
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("ingress queue poisoned");
        }
    }

    /// Pop up to `max` messages without blocking; an empty vec means the
    /// queue is currently empty (open or closed).
    pub fn try_pop_batch(&self, max: usize) -> Vec<Message> {
        let mut state = self.state.lock().expect("ingress queue poisoned");
        self.take(&mut state, max)
    }

    fn take(&self, state: &mut QueueState, max: usize) -> Vec<Message> {
        let count = state.messages.len().min(max);
        let batch: Vec<Message> = state.messages.drain(..count).collect();
        if !batch.is_empty() {
            self.not_full.notify_all();
        }
        batch
    }

    /// Close the queue: producers are refused from now on (blocked ones
    /// wake and get [`PushOutcome::Rejected`]); the consumer drains what
    /// remains.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("ingress queue poisoned");
        state.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("ingress queue poisoned").closed
    }

    /// Whether a [`TryPush`] right now could resolve without blocking:
    /// there is headroom, the policy makes room, or close would reject.
    /// The simulation scheduler's readiness predicate for a parked
    /// producer.
    pub fn would_accept(&self, policy: Backpressure) -> bool {
        let state = self.state.lock().expect("ingress queue poisoned");
        state.closed
            || state.messages.len() < self.capacity
            || !matches!(policy, Backpressure::Block)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("ingress queue poisoned")
            .messages
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer-side counters `(offered, rejected, shed)` accumulated so
    /// far; the service folds these into the shard's metrics at drain.
    pub fn counters(&self) -> (u64, u64, u64) {
        let state = self.state.lock().expect("ingress queue poisoned");
        (state.offered, state.rejected, state.shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn msg(id: u64) -> Message {
        Message::new(id, 0, vec![id as u8])
    }

    #[test]
    fn fifo_order_and_batch_pop() {
        let q = IngressQueue::new(8);
        for i in 0..5 {
            assert_eq!(q.push(msg(i), Backpressure::Reject), PushOutcome::Enqueued);
        }
        let batch = q.try_pop_batch(3);
        let ids: Vec<u64> = batch.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn reject_and_shed_at_capacity() {
        let q = IngressQueue::new(2);
        q.push(msg(0), Backpressure::Reject);
        q.push(msg(1), Backpressure::Reject);
        assert_eq!(q.push(msg(2), Backpressure::Reject), PushOutcome::Rejected);
        assert_eq!(
            q.push(msg(3), Backpressure::ShedOldest),
            PushOutcome::EnqueuedAfterShed
        );
        let ids: Vec<u64> = q.try_pop_batch(9).iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(q.counters(), (4, 1, 1));
    }

    #[test]
    #[should_panic(expected = "queue capacity must be positive")]
    fn zero_capacity_queue_is_refused() {
        IngressQueue::new(0);
    }

    /// The deterministic equivalent of the old sleep-based
    /// "blocked producer wakes on pop" test: the would-block hand-back,
    /// a pop, and the retry are explicit steps — no threads, no timing.
    #[test]
    fn would_block_hand_back_then_enqueue_after_pop() {
        let q = IngressQueue::new(1);
        assert_eq!(q.try_push(msg(0), Backpressure::Block), TryPush::Enqueued);
        assert!(!q.would_accept(Backpressure::Block));
        let held = match q.try_push(msg(1), Backpressure::Block) {
            TryPush::WouldBlock(held) => held,
            other => panic!("expected would-block, got {other:?}"),
        };
        // A hand-back counts nothing: the producer still holds the message.
        assert_eq!(q.counters(), (1, 0, 0));
        assert_eq!(q.try_pop_batch(1).len(), 1);
        assert!(q.would_accept(Backpressure::Block));
        assert_eq!(q.try_push(held, Backpressure::Block), TryPush::Enqueued);
        assert_eq!(q.counters(), (2, 0, 0));
        assert_eq!(q.try_pop_batch(9)[0].id, 1);
    }

    /// Deterministic close-while-blocked: a parked producer's retry after
    /// close resolves to rejection, with the queue still full.
    #[test]
    fn close_while_blocked_rejects_the_retry() {
        let q = IngressQueue::new(1);
        q.try_push(msg(0), Backpressure::Block);
        let held = match q.try_push(msg(1), Backpressure::Block) {
            TryPush::WouldBlock(held) => held,
            other => panic!("expected would-block, got {other:?}"),
        };
        q.close();
        assert!(q.is_closed());
        // Close makes every parked producer ready: the retry resolves.
        assert!(q.would_accept(Backpressure::Block));
        assert_eq!(q.try_push(held, Backpressure::Block), TryPush::Rejected);
        assert_eq!(q.counters(), (2, 1, 0));
    }

    /// Drain-after-close: the consumer empties the backlog, then reads the
    /// closed-and-empty terminal state from both pop entry points.
    #[test]
    fn drain_after_close_yields_backlog_then_none() {
        let q = IngressQueue::new(4);
        for i in 0..3 {
            q.push(msg(i), Backpressure::Block);
        }
        q.close();
        assert_eq!(q.try_push(msg(9), Backpressure::Block), TryPush::Rejected);
        let ids: Vec<u64> = q.try_pop_batch(2).iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(q.pop_batch_blocking(4).map(|b| b.len()), Some(1));
        assert_eq!(q.pop_batch_blocking(4), None);
        assert!(q.try_pop_batch(4).is_empty());
    }

    #[test]
    fn try_push_matches_push_for_shed_and_reject() {
        let q = IngressQueue::new(1);
        q.try_push(msg(0), Backpressure::Reject);
        assert_eq!(q.try_push(msg(1), Backpressure::Reject), TryPush::Rejected);
        assert_eq!(
            q.try_push(msg(2), Backpressure::ShedOldest),
            TryPush::EnqueuedAfterShed
        );
        assert_eq!(q.try_pop_batch(9)[0].id, 2);
        assert_eq!(q.counters(), (3, 1, 1));
    }

    /// Threaded smoke test of the real condvar path — no sleeps: whichever
    /// side runs first, the blocking producer must land its message once
    /// the consumer makes room.
    #[test]
    fn blocking_producer_and_consumer_make_progress() {
        let q = Arc::new(IngressQueue::new(1));
        q.push(msg(0), Backpressure::Block);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(msg(1), Backpressure::Block))
        };
        // Pop exactly one message; the producer fills the freed slot
        // (before or after we pop — both orders end identically).
        let popped = q.pop_batch_blocking(1).expect("open queue yields batch");
        assert_eq!(popped.len(), 1);
        assert_eq!(producer.join().unwrap(), PushOutcome::Enqueued);
        assert_eq!(q.len(), 1);
    }

    /// Threaded smoke test: close wakes a producer stuck on a full queue
    /// with a rejection (or rejects it on entry — either order is a
    /// rejection), and the consumer still drains the backlog.
    #[test]
    fn close_terminates_blocking_producer_with_rejection() {
        let q = Arc::new(IngressQueue::new(1));
        q.push(msg(0), Backpressure::Block);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(msg(1), Backpressure::Block))
        };
        q.close();
        assert_eq!(producer.join().unwrap(), PushOutcome::Rejected);
        assert_eq!(q.pop_batch_blocking(4).map(|b| b.len()), Some(1));
        assert_eq!(q.pop_batch_blocking(4), None);
    }

    /// Threaded smoke test: a consumer parked on an empty queue is woken
    /// by the first push, without any timing assumptions.
    #[test]
    fn consumer_wakes_on_push() {
        let q = Arc::new(IngressQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch_blocking(4))
        };
        q.push(msg(7), Backpressure::Block);
        let batch = consumer.join().unwrap().expect("open queue yields batch");
        assert_eq!(batch[0].id, 7);
    }
}
