//! Bounded per-shard ingress rings for the threaded service.
//!
//! One ring sits in front of each shard worker. The hot path is a
//! bounded SPSC ring buffer: a power-of-two slot array indexed by
//! free-running (wrapping) `u64` head/tail counters published with
//! acquire/release atomics, with a cached head index on the producer
//! side so the common push touches no consumer state at all. Producers
//! are serialized by a producer-side mutex (collapsing N submitting
//! threads into the single logical producer the ring needs — placement
//! owns routing, so one shard's ring is only ever fed through its
//! service-side admission path), and the single worker consumes through
//! a consumer-side mutex that is uncontended except when a shedding
//! producer must evict the oldest entry. A condvar-parked slow path
//! exists *only* for [`Backpressure::Block`] (full ring) and for the
//! consumer waiting on an empty open ring; every other transition is
//! lock-cheap and wait-free of the opposite side.
//!
//! # Memory ordering
//!
//! The ring's correctness rests on two acquire/release pairs and one
//! Dekker-style store/load handshake (see DESIGN.md §11 for the full
//! argument):
//!
//! * **tail publication** — the producer writes the slot, then stores
//!   `tail` (release; `SeqCst` in practice, see below). The consumer
//!   loads `tail` (acquire) before reading slots, so every slot read
//!   happens-after the write that filled it.
//! * **head publication** — the consumer moves messages out of their
//!   slots, then stores `head` (release/`SeqCst`). The producer refreshes
//!   its cached head with an acquire load before reusing a slot, so slot
//!   reuse happens-after the consumer finished with it.
//! * **parking handshake** — a producer that must park announces itself
//!   (`parked_producers`, `SeqCst`) *before* re-checking fullness
//!   (`SeqCst` load of `head`); the consumer stores `head` (`SeqCst`)
//!   *before* checking `parked_producers`. Sequential consistency over
//!   these four operations means either the producer sees the freed
//!   space or the consumer sees the parked producer — never neither —
//!   and the waker locks the sleeper's mutex before notifying, so the
//!   wakeup cannot be lost between the re-check and the wait. The
//!   empty-ring consumer park is the mirror image over `tail` and
//!   `consumer_parked`.
//!
//! Every state transition is also reachable without blocking:
//! [`IngressQueue::try_push`] returns [`TryPush::WouldBlock`] (handing the
//! message back) where [`IngressQueue::push`] would wait, and
//! [`IngressQueue::try_pop_batch`] plus [`IngressQueue::is_closed`] cover
//! the consumer side. The deterministic simulation harness drives the
//! queue exclusively through these non-blocking steps, so a seeded
//! scheduler — not the host OS — decides every interleaving; the blocking
//! entry points are thin condvar loops over the same admission logic.
//!
//! Built on `std::sync::{Mutex, Condvar}` — the vendored `parking_lot`
//! shim deliberately exposes no condition variables.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

use switchsim::Message;

use crate::config::Backpressure;

/// What a blocking push did. Mirrors [`SubmitOutcome`](crate::SubmitOutcome)
/// minus the synchronous-only backpressure hand-back (a blocked producer
/// really blocks here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued.
    Enqueued,
    /// Enqueued after dropping the oldest queued message.
    EnqueuedAfterShed,
    /// Refused (full queue under [`Backpressure::Reject`], or closed).
    Rejected,
}

/// What a non-blocking push did: [`PushOutcome`] plus the would-block
/// hand-back a cooperative scheduler parks on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TryPush {
    /// Enqueued.
    Enqueued,
    /// Enqueued after dropping the oldest queued message.
    EnqueuedAfterShed,
    /// Refused (full queue under [`Backpressure::Reject`], or closed).
    Rejected,
    /// The queue is full under [`Backpressure::Block`]: the message is
    /// handed back; retry after the consumer pops or the queue closes.
    WouldBlock(Message),
}

/// What a frame-batched push did: per-outcome counts plus the suffix a
/// full ring handed back under [`Backpressure::Block`], in submission
/// order. The counts are exactly what the equivalent sequence of single
/// pushes would have produced, so batch admission is observationally the
/// same state machine, amortized to one tail publication.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct BatchPush {
    /// Messages that landed in the ring (including any that a later
    /// message of the same overlong batch immediately shed again).
    pub enqueued: usize,
    /// Queued messages evicted by [`Backpressure::ShedOldest`].
    pub shed: u64,
    /// Messages refused (ring full under [`Backpressure::Reject`], or
    /// closed).
    pub rejected: usize,
    /// The unplaced suffix under [`Backpressure::Block`]: handed back,
    /// counted as nothing (the producer still holds them).
    pub blocked: Vec<Message>,
}

impl BatchPush {
    /// Net change this push made to the number of messages the consumer
    /// will eventually pop: enqueues minus the queued messages shed to
    /// make room for them.
    pub fn in_flight_delta(&self) -> i64 {
        self.enqueued as i64 - self.shed as i64
    }
}

/// Producer-side state, serialized by the producer mutex. `cached_head`
/// lets the common push decide "there is room" without touching the
/// consumer's cache line; the counters fold into the shard's metrics at
/// drain. Counted when a push resolves (enqueued, shed, or rejected) — a
/// would-block hand-back counts nothing, since the producer still holds
/// the message.
#[derive(Debug, Default)]
struct ProducerSide {
    cached_head: u64,
    offered: u64,
    rejected: u64,
    shed: u64,
}

/// Consumer-side state, serialized by the consumer mutex (held by the
/// worker's pops and, rarely, by a shedding producer evicting the
/// oldest entry).
#[derive(Debug, Default)]
struct ConsumerSide {
    cached_tail: u64,
}

/// A bounded ingress ring with pluggable backpressure.
///
/// `close` starts a graceful drain: producers are refused from then on,
/// the consumer keeps popping until the ring is empty, and blocked
/// producers wake immediately.
#[derive(Debug)]
pub struct IngressQueue {
    /// Power-of-two slot array; a slot is owned by the producer side from
    /// head+capacity to tail (filling) and by the consumer side from head
    /// to tail (draining). `Option` so the ring never holds uninitialized
    /// memory.
    slots: Box<[UnsafeCell<Option<Message>>]>,
    /// `slots.len() - 1`; indices are free-running and wrap at 2^64,
    /// which is a multiple of the power-of-two slot count.
    mask: u64,
    /// The logical bound (exact, independent of the physical slot count).
    capacity: usize,
    /// Next index to pop. Written only under the consumer mutex.
    head: AtomicU64,
    /// Next index to fill. Written only under the producer mutex.
    tail: AtomicU64,
    closed: AtomicBool,
    producer: Mutex<ProducerSide>,
    /// Producers parked on a full ring. Mutated only under the producer
    /// mutex; read lock-free by the consumer's wake check.
    parked_producers: AtomicUsize,
    /// Paired with the producer mutex.
    not_full: Condvar,
    consumer: Mutex<ConsumerSide>,
    /// Whether the consumer is parked on an empty ring. Mutated only
    /// under the consumer mutex; read lock-free by the publish check.
    consumer_parked: AtomicBool,
    /// Paired with the consumer mutex.
    not_empty: Condvar,
}

// Slot access is coordinated by the head/tail protocol documented above;
// the `UnsafeCell`s alone are what inhibit the auto-impl.
unsafe impl Sync for IngressQueue {}

impl IngressQueue {
    /// An empty open ring holding at most `capacity` messages.
    ///
    /// # Panics
    /// If `capacity` is zero — a zero-capacity queue could admit nothing
    /// and would deadlock every blocking producer.
    pub fn new(capacity: usize) -> IngressQueue {
        IngressQueue::with_start_index(capacity, 0)
    }

    /// [`IngressQueue::new`], but with head and tail starting at `start`
    /// instead of zero. The ring's behavior must not depend on the
    /// absolute index values (they are free-running and wrap at 2^64);
    /// this hook lets tests start just below `u64::MAX` and drive the
    /// indices across the overflow.
    pub fn with_start_index(capacity: usize, start: u64) -> IngressQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        let physical = capacity.next_power_of_two();
        let slots: Box<[UnsafeCell<Option<Message>>]> =
            (0..physical).map(|_| UnsafeCell::new(None)).collect();
        IngressQueue {
            slots,
            mask: physical as u64 - 1,
            capacity,
            head: AtomicU64::new(start),
            tail: AtomicU64::new(start),
            closed: AtomicBool::new(false),
            producer: Mutex::new(ProducerSide {
                cached_head: start,
                ..ProducerSide::default()
            }),
            parked_producers: AtomicUsize::new(0),
            not_full: Condvar::new(),
            consumer: Mutex::new(ConsumerSide { cached_tail: start }),
            consumer_parked: AtomicBool::new(false),
            not_empty: Condvar::new(),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slot write: producer side only, index in `[head+capacity, tail]`
    /// territory, after the room check.
    ///
    /// # Safety
    /// Caller must hold the producer mutex and have established (via
    /// `free_room`) that `index` is at least `capacity` ahead of every
    /// head value the consumer could still be reading slots under.
    unsafe fn write_slot(&self, index: u64, message: Message) {
        *self.slots[(index & self.mask) as usize].get() = Some(message);
    }

    /// Slot take: consumer side only, index in `[head, tail)`.
    ///
    /// # Safety
    /// Caller must hold the consumer mutex and have loaded a `tail`
    /// (acquire) proving the slot was published.
    unsafe fn take_slot(&self, index: u64) -> Message {
        (*self.slots[(index & self.mask) as usize].get())
            .take()
            .expect("ring slot published but empty")
    }

    /// Free slots as seen by the producer: first against the cached head
    /// (no shared-state touch), refreshing from the real head (acquire —
    /// pairs with the consumer's head publication, licensing slot reuse)
    /// only when the cache cannot prove `needed` slots are free.
    fn free_room(&self, prod: &mut ProducerSide, tail: u64, needed: usize) -> usize {
        let used = tail.wrapping_sub(prod.cached_head) as usize;
        let room = self.capacity.saturating_sub(used);
        if room >= needed {
            return room;
        }
        prod.cached_head = self.head.load(Ordering::Acquire);
        self.capacity
            .saturating_sub(tail.wrapping_sub(prod.cached_head) as usize)
    }

    /// Publish `new_tail` (making the freshly written slots poppable) and
    /// wake the consumer if it parked on empty. The `SeqCst` store orders
    /// against the parked-flag load — the publication half of the Dekker
    /// handshake; it is also the release store the consumer's acquire
    /// load of `tail` pairs with.
    fn publish_tail(&self, new_tail: u64) {
        self.tail.store(new_tail, Ordering::SeqCst);
        if self.consumer_parked.load(Ordering::SeqCst) {
            // Lock-then-notify: once we hold the consumer mutex the
            // parked consumer is guaranteed to be inside `wait` (it set
            // the flag and re-checked under this mutex), so the notify
            // cannot fall between its re-check and its sleep.
            drop(self.consumer.lock().expect("ingress ring poisoned"));
            self.not_empty.notify_one();
        }
    }

    /// Evict the `count` oldest queued messages (consumer-mutex-serialized
    /// head advance from the producer side). Caller holds the producer
    /// mutex, so `tail` is frozen; taking the consumer mutex orders the
    /// eviction against concurrent pops. Returns how many were evicted.
    fn evict_oldest(&self, count: u64) -> u64 {
        let _cons = self.consumer.lock().expect("ingress ring poisoned");
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let evicted = count.min(tail.wrapping_sub(head));
        for i in 0..evicted {
            drop(unsafe { self.take_slot(head.wrapping_add(i)) });
        }
        self.head
            .store(head.wrapping_add(evicted), Ordering::SeqCst);
        evicted
    }

    /// The batched admission state machine, under the producer mutex: one
    /// room check, one run of slot writes, one tail publication —
    /// observationally identical to pushing each message in order.
    fn admit_batch(
        &self,
        prod: &mut ProducerSide,
        messages: Vec<Message>,
        policy: Backpressure,
    ) -> BatchPush {
        let len = messages.len();
        if len == 0 {
            return BatchPush::default();
        }
        if self.closed.load(Ordering::SeqCst) {
            prod.offered += len as u64;
            prod.rejected += len as u64;
            return BatchPush {
                rejected: len,
                ..BatchPush::default()
            };
        }
        let tail = self.tail.load(Ordering::Relaxed);
        let room = self.free_room(prod, tail, len);
        if len <= room {
            prod.offered += len as u64;
            for (i, message) in messages.into_iter().enumerate() {
                unsafe { self.write_slot(tail.wrapping_add(i as u64), message) };
            }
            self.publish_tail(tail.wrapping_add(len as u64));
            return BatchPush {
                enqueued: len,
                ..BatchPush::default()
            };
        }
        match policy {
            Backpressure::Block => {
                // Place the prefix that fits; hand the rest back
                // uncounted (the producer still holds them).
                prod.offered += room as u64;
                let mut it = messages.into_iter();
                for i in 0..room {
                    let message = it.next().expect("room <= len");
                    unsafe { self.write_slot(tail.wrapping_add(i as u64), message) };
                }
                if room > 0 {
                    self.publish_tail(tail.wrapping_add(room as u64));
                }
                BatchPush {
                    enqueued: room,
                    blocked: it.collect(),
                    ..BatchPush::default()
                }
            }
            Backpressure::Reject => {
                prod.offered += len as u64;
                prod.rejected += (len - room) as u64;
                let mut it = messages.into_iter();
                for i in 0..room {
                    let message = it.next().expect("room <= len");
                    unsafe { self.write_slot(tail.wrapping_add(i as u64), message) };
                }
                if room > 0 {
                    self.publish_tail(tail.wrapping_add(room as u64));
                }
                BatchPush {
                    enqueued: room,
                    rejected: len - room,
                    ..BatchPush::default()
                }
            }
            Backpressure::ShedOldest => {
                // Sequentially, every message of the batch enqueues and
                // each overflow push sheds the then-oldest entry — which,
                // for a batch longer than the ring, is an *earlier
                // message of the same batch*. The net state (the batch's
                // last `capacity` messages) and the counters are
                // identical; the physical shortcut just skips writing
                // messages the batch itself would immediately evict.
                prod.offered += len as u64;
                let shed = if len >= self.capacity {
                    let evicted = self.evict_oldest(self.capacity as u64);
                    evicted + (len - self.capacity) as u64
                } else {
                    self.evict_oldest((len - room) as u64)
                };
                prod.cached_head = self.head.load(Ordering::Acquire);
                prod.shed += shed;
                let skip = len.saturating_sub(self.capacity);
                for (i, message) in messages.into_iter().skip(skip).enumerate() {
                    unsafe { self.write_slot(tail.wrapping_add(i as u64), message) };
                }
                self.publish_tail(tail.wrapping_add((len - skip) as u64));
                BatchPush {
                    enqueued: len,
                    shed,
                    ..BatchPush::default()
                }
            }
        }
    }

    /// One single-message admission attempt under the producer mutex —
    /// the same state machine the blocking and non-blocking push share
    /// (and the single-message specialization of [`Self::admit_batch`],
    /// with no per-message allocation).
    fn admit(&self, prod: &mut ProducerSide, message: Message, policy: Backpressure) -> TryPush {
        if self.closed.load(Ordering::SeqCst) {
            prod.offered += 1;
            prod.rejected += 1;
            return TryPush::Rejected;
        }
        let tail = self.tail.load(Ordering::Relaxed);
        if self.free_room(prod, tail, 1) == 0 {
            match policy {
                Backpressure::Block => return TryPush::WouldBlock(message),
                Backpressure::Reject => {
                    prod.offered += 1;
                    prod.rejected += 1;
                    return TryPush::Rejected;
                }
                Backpressure::ShedOldest => {
                    let evicted = self.evict_oldest(1);
                    prod.cached_head = self.head.load(Ordering::Acquire);
                    prod.offered += 1;
                    prod.shed += evicted;
                    unsafe { self.write_slot(tail, message) };
                    self.publish_tail(tail.wrapping_add(1));
                    return if evicted > 0 {
                        TryPush::EnqueuedAfterShed
                    } else {
                        // The consumer drained the ring between the room
                        // check and the eviction: plain enqueue after all.
                        TryPush::Enqueued
                    };
                }
            }
        }
        prod.offered += 1;
        unsafe { self.write_slot(tail, message) };
        self.publish_tail(tail.wrapping_add(1));
        TryPush::Enqueued
    }

    /// Park on the full ring until the consumer frees space or the queue
    /// closes. The Dekker handshake: announce (`SeqCst`), re-check
    /// fullness and close (`SeqCst` loads), and only then wait — the
    /// consumer's head publication and parked-count check are the
    /// mirror-image `SeqCst` pair, so one side always sees the other.
    fn park_producer<'a>(
        &'a self,
        prod: MutexGuard<'a, ProducerSide>,
    ) -> MutexGuard<'a, ProducerSide> {
        let mut prod = prod;
        self.parked_producers.fetch_add(1, Ordering::SeqCst);
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::SeqCst);
        if tail.wrapping_sub(head) as usize >= self.capacity && !self.closed.load(Ordering::SeqCst)
        {
            prod = self.not_full.wait(prod).expect("ingress ring poisoned");
        }
        self.parked_producers.fetch_sub(1, Ordering::SeqCst);
        prod
    }

    /// Push one message under `policy` without ever blocking. Where
    /// [`IngressQueue::push`] would wait, this hands the message back as
    /// [`TryPush::WouldBlock`] and counts nothing.
    pub fn try_push(&self, message: Message, policy: Backpressure) -> TryPush {
        let mut prod = self.producer.lock().expect("ingress ring poisoned");
        self.admit(&mut prod, message, policy)
    }

    /// Push a whole frame of messages under `policy` without blocking:
    /// one room check and one tail publication for the run that fits.
    /// Under [`Backpressure::Block`] the suffix that does not fit comes
    /// back in [`BatchPush::blocked`], uncounted.
    pub fn try_push_batch(&self, messages: Vec<Message>, policy: Backpressure) -> BatchPush {
        let mut prod = self.producer.lock().expect("ingress ring poisoned");
        self.admit_batch(&mut prod, messages, policy)
    }

    /// Push one message under `policy`. [`Backpressure::Block`] waits for
    /// space (or for close, which rejects).
    pub fn push(&self, message: Message, policy: Backpressure) -> PushOutcome {
        let mut prod = self.producer.lock().expect("ingress ring poisoned");
        let mut message = message;
        loop {
            match self.admit(&mut prod, message, policy) {
                TryPush::Enqueued => return PushOutcome::Enqueued,
                TryPush::EnqueuedAfterShed => return PushOutcome::EnqueuedAfterShed,
                TryPush::Rejected => return PushOutcome::Rejected,
                TryPush::WouldBlock(held) => {
                    message = held;
                    prod = self.park_producer(prod);
                }
            }
        }
    }

    /// Push a whole frame under `policy`, waiting under
    /// [`Backpressure::Block`] until every message is placed (or the
    /// queue closes, which rejects the remainder). Returns the merged
    /// counts; [`BatchPush::blocked`] is always empty.
    pub fn push_batch(&self, messages: Vec<Message>, policy: Backpressure) -> BatchPush {
        let mut prod = self.producer.lock().expect("ingress ring poisoned");
        let mut remaining = messages;
        let mut total = BatchPush::default();
        loop {
            let step = self.admit_batch(&mut prod, remaining, policy);
            total.enqueued += step.enqueued;
            total.shed += step.shed;
            total.rejected += step.rejected;
            if step.blocked.is_empty() {
                return total;
            }
            remaining = step.blocked;
            prod = self.park_producer(prod);
        }
    }

    /// Pop up to `max` messages, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed **and** empty.
    pub fn pop_batch_blocking(&self, max: usize) -> Option<Vec<Message>> {
        let mut cons = self.consumer.lock().expect("ingress ring poisoned");
        loop {
            let batch = self.take(&mut cons, max);
            if !batch.is_empty() {
                drop(cons);
                self.wake_parked_producers();
                return Some(batch);
            }
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            // Announce-then-recheck, mirroring the producer park: a
            // publisher either sees the flag (and lock-then-notifies) or
            // published before our SeqCst tail load (and we see the data).
            self.consumer_parked.store(true, Ordering::SeqCst);
            let head = self.head.load(Ordering::Relaxed);
            let tail = self.tail.load(Ordering::SeqCst);
            if tail == head && !self.closed.load(Ordering::SeqCst) {
                cons = self.not_empty.wait(cons).expect("ingress ring poisoned");
            }
            self.consumer_parked.store(false, Ordering::SeqCst);
        }
    }

    /// Pop up to `max` messages without blocking; an empty vec means the
    /// queue is currently empty (open or closed).
    pub fn try_pop_batch(&self, max: usize) -> Vec<Message> {
        let batch = {
            let mut cons = self.consumer.lock().expect("ingress ring poisoned");
            self.take(&mut cons, max)
        };
        if !batch.is_empty() {
            self.wake_parked_producers();
        }
        batch
    }

    /// Drain up to `max` slots under the consumer mutex and publish the
    /// new head (`SeqCst`: the release half of the reuse pairing *and*
    /// the store half of the parked-producer handshake).
    fn take(&self, cons: &mut ConsumerSide, max: usize) -> Vec<Message> {
        let head = self.head.load(Ordering::Relaxed);
        // The cache is stale when it shows nothing to pop — or when a
        // shedding producer advanced head past it, leaving an impossible
        // (wrapped) distance.
        let cached = cons.cached_tail.wrapping_sub(head) as usize;
        if cached == 0 || cached > self.capacity {
            cons.cached_tail = self.tail.load(Ordering::Acquire);
        }
        let count = (cons.cached_tail.wrapping_sub(head) as usize).min(max);
        let mut batch = Vec::with_capacity(count);
        for i in 0..count {
            batch.push(unsafe { self.take_slot(head.wrapping_add(i as u64)) });
        }
        if count > 0 {
            self.head
                .store(head.wrapping_add(count as u64), Ordering::SeqCst);
        }
        batch
    }

    /// The consumer's half of the full-ring handshake: after publishing
    /// the freed space, wake any parked producer (never called with the
    /// consumer mutex held — the waker locks the producer mutex, and
    /// producer-then-consumer is the fixed lock order everywhere else).
    fn wake_parked_producers(&self) {
        if self.parked_producers.load(Ordering::SeqCst) > 0 {
            drop(self.producer.lock().expect("ingress ring poisoned"));
            self.not_full.notify_all();
        }
    }

    /// Close the queue: producers are refused from now on (blocked ones
    /// wake and get [`PushOutcome::Rejected`]); the consumer drains what
    /// remains.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Lock-then-notify on both sides so no sleeper can miss the flag
        // between its re-check and its wait.
        drop(self.producer.lock().expect("ingress ring poisoned"));
        self.not_full.notify_all();
        drop(self.consumer.lock().expect("ingress ring poisoned"));
        self.not_empty.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Whether a [`TryPush`] right now could resolve without blocking:
    /// there is headroom, the policy makes room, or close would reject.
    /// The simulation scheduler's readiness predicate for a parked
    /// producer.
    pub fn would_accept(&self, policy: Backpressure) -> bool {
        self.closed.load(Ordering::SeqCst)
            || self.len() < self.capacity
            || !matches!(policy, Backpressure::Block)
    }

    /// Messages currently queued. Loads head before tail so a concurrent
    /// pop can only make the estimate high, never wrap it negative.
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::SeqCst);
        let tail = self.tail.load(Ordering::SeqCst);
        tail.wrapping_sub(head) as usize
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer-side counters `(offered, rejected, shed)` accumulated so
    /// far; the service folds these into the shard's metrics exactly once
    /// per snapshot (see `ServiceCore::fold_queue_counters`).
    pub fn counters(&self) -> (u64, u64, u64) {
        let prod = self.producer.lock().expect("ingress ring poisoned");
        (prod.offered, prod.rejected, prod.shed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn msg(id: u64) -> Message {
        Message::new(id, 0, vec![id as u8])
    }

    fn ids(batch: &[Message]) -> Vec<u64> {
        batch.iter().map(|m| m.id).collect()
    }

    #[test]
    fn fifo_order_and_batch_pop() {
        let q = IngressQueue::new(8);
        for i in 0..5 {
            assert_eq!(q.push(msg(i), Backpressure::Reject), PushOutcome::Enqueued);
        }
        let batch = q.try_pop_batch(3);
        assert_eq!(ids(&batch), vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn reject_and_shed_at_capacity() {
        let q = IngressQueue::new(2);
        q.push(msg(0), Backpressure::Reject);
        q.push(msg(1), Backpressure::Reject);
        assert_eq!(q.push(msg(2), Backpressure::Reject), PushOutcome::Rejected);
        assert_eq!(
            q.push(msg(3), Backpressure::ShedOldest),
            PushOutcome::EnqueuedAfterShed
        );
        assert_eq!(ids(&q.try_pop_batch(9)), vec![1, 3]);
        assert_eq!(q.counters(), (4, 1, 1));
    }

    #[test]
    #[should_panic(expected = "queue capacity must be positive")]
    fn zero_capacity_queue_is_refused() {
        IngressQueue::new(0);
    }

    /// The deterministic equivalent of the old sleep-based
    /// "blocked producer wakes on pop" test: the would-block hand-back,
    /// a pop, and the retry are explicit steps — no threads, no timing.
    #[test]
    fn would_block_hand_back_then_enqueue_after_pop() {
        let q = IngressQueue::new(1);
        assert_eq!(q.try_push(msg(0), Backpressure::Block), TryPush::Enqueued);
        assert!(!q.would_accept(Backpressure::Block));
        let held = match q.try_push(msg(1), Backpressure::Block) {
            TryPush::WouldBlock(held) => held,
            other => panic!("expected would-block, got {other:?}"),
        };
        // A hand-back counts nothing: the producer still holds the message.
        assert_eq!(q.counters(), (1, 0, 0));
        assert_eq!(q.try_pop_batch(1).len(), 1);
        assert!(q.would_accept(Backpressure::Block));
        assert_eq!(q.try_push(held, Backpressure::Block), TryPush::Enqueued);
        assert_eq!(q.counters(), (2, 0, 0));
        assert_eq!(q.try_pop_batch(9)[0].id, 1);
    }

    /// Deterministic close-while-blocked: a parked producer's retry after
    /// close resolves to rejection, with the queue still full.
    #[test]
    fn close_while_blocked_rejects_the_retry() {
        let q = IngressQueue::new(1);
        q.try_push(msg(0), Backpressure::Block);
        let held = match q.try_push(msg(1), Backpressure::Block) {
            TryPush::WouldBlock(held) => held,
            other => panic!("expected would-block, got {other:?}"),
        };
        q.close();
        assert!(q.is_closed());
        // Close makes every parked producer ready: the retry resolves.
        assert!(q.would_accept(Backpressure::Block));
        assert_eq!(q.try_push(held, Backpressure::Block), TryPush::Rejected);
        assert_eq!(q.counters(), (2, 1, 0));
    }

    /// Drain-after-close: the consumer empties the backlog, then reads the
    /// closed-and-empty terminal state from both pop entry points.
    #[test]
    fn drain_after_close_yields_backlog_then_none() {
        let q = IngressQueue::new(4);
        for i in 0..3 {
            q.push(msg(i), Backpressure::Block);
        }
        q.close();
        assert_eq!(q.try_push(msg(9), Backpressure::Block), TryPush::Rejected);
        assert_eq!(ids(&q.try_pop_batch(2)), vec![0, 1]);
        assert_eq!(q.pop_batch_blocking(4).map(|b| b.len()), Some(1));
        assert_eq!(q.pop_batch_blocking(4), None);
        assert!(q.try_pop_batch(4).is_empty());
    }

    #[test]
    fn try_push_matches_push_for_shed_and_reject() {
        let q = IngressQueue::new(1);
        q.try_push(msg(0), Backpressure::Reject);
        assert_eq!(q.try_push(msg(1), Backpressure::Reject), TryPush::Rejected);
        assert_eq!(
            q.try_push(msg(2), Backpressure::ShedOldest),
            TryPush::EnqueuedAfterShed
        );
        assert_eq!(q.try_pop_batch(9)[0].id, 2);
        assert_eq!(q.counters(), (3, 1, 1));
    }

    /// A capacity-1 ring (the degenerate SPSC case: one physical slot,
    /// head and tail always within one of each other) cycles correctly
    /// through every policy.
    #[test]
    fn capacity_one_ring_cycles_through_all_policies() {
        let q = IngressQueue::new(1);
        assert_eq!(q.capacity(), 1);
        for round in 0..3u64 {
            assert_eq!(
                q.try_push(msg(round), Backpressure::Block),
                TryPush::Enqueued
            );
            assert!(matches!(
                q.try_push(msg(100 + round), Backpressure::Block),
                TryPush::WouldBlock(_)
            ));
            assert_eq!(
                q.try_push(msg(200 + round), Backpressure::Reject),
                TryPush::Rejected
            );
            assert_eq!(
                q.try_push(msg(300 + round), Backpressure::ShedOldest),
                TryPush::EnqueuedAfterShed
            );
            assert_eq!(ids(&q.try_pop_batch(9)), vec![300 + round]);
        }
        // Per round: block-enqueue, reject, shed-enqueue resolve (3
        // offered); the would-block hand-back counts nothing.
        assert_eq!(q.counters(), (9, 3, 3));
    }

    /// Free-running indices must survive the u64 overflow: start both
    /// indices just below `u64::MAX` and push/pop across the wrap. FIFO
    /// order, lengths, and counters are index-invariant.
    #[test]
    fn wrap_around_across_index_overflow() {
        for capacity in [1usize, 2, 3, 4] {
            let q = IngressQueue::with_start_index(capacity, u64::MAX - 2);
            let mut next_push = 0u64;
            let mut next_pop = 0u64;
            // Enough traffic to carry head and tail well past the wrap.
            for _ in 0..4 {
                while q.len() < capacity {
                    assert_eq!(
                        q.try_push(msg(next_push), Backpressure::Block),
                        TryPush::Enqueued
                    );
                    next_push += 1;
                }
                assert!(matches!(
                    q.try_push(msg(u64::MAX), Backpressure::Block),
                    TryPush::WouldBlock(_)
                ));
                for m in q.try_pop_batch(capacity) {
                    assert_eq!(m.id, next_pop, "FIFO broke across the index wrap");
                    next_pop += 1;
                }
            }
            assert_eq!(next_pop, next_push);
            assert!(q.is_empty());
            assert_eq!(q.counters(), (next_push, 0, 0));
        }
    }

    /// A frame burst larger than the ring under every policy: Block
    /// places the prefix and hands back the suffix uncounted; Reject
    /// counts the overflow; ShedOldest keeps exactly the batch's last
    /// `capacity` messages and accounts every eviction.
    #[test]
    fn batch_larger_than_ring_capacity() {
        let burst = |range: std::ops::Range<u64>| range.map(msg).collect::<Vec<_>>();

        let q = IngressQueue::new(4);
        q.push(msg(90), Backpressure::Block);
        let result = q.try_push_batch(burst(0..10), Backpressure::Block);
        assert_eq!(result.enqueued, 3);
        assert_eq!(ids(&result.blocked), vec![3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(result.in_flight_delta(), 3);
        assert_eq!(q.counters(), (4, 0, 0), "hand-backs count nothing");
        assert_eq!(ids(&q.try_pop_batch(9)), vec![90, 0, 1, 2]);

        let q = IngressQueue::new(4);
        q.push(msg(90), Backpressure::Block);
        let result = q.try_push_batch(burst(0..10), Backpressure::Reject);
        assert_eq!((result.enqueued, result.rejected), (3, 7));
        assert_eq!(q.counters(), (11, 7, 0));
        assert_eq!(ids(&q.try_pop_batch(9)), vec![90, 0, 1, 2]);

        let q = IngressQueue::new(4);
        q.push(msg(90), Backpressure::Block);
        let result = q.try_push_batch(burst(0..10), Backpressure::ShedOldest);
        // Sequentially all 10 enqueue; the pre-existing message and the
        // batch's first 6 get shed along the way: net +3 in flight.
        assert_eq!((result.enqueued, result.shed), (10, 7));
        assert_eq!(result.in_flight_delta(), 3);
        assert_eq!(q.counters(), (11, 0, 7));
        assert_eq!(ids(&q.try_pop_batch(9)), vec![6, 7, 8, 9]);
    }

    /// A batch that exactly fits spends one publication and keeps order;
    /// a partial overflow under ShedOldest evicts only the overflow.
    #[test]
    fn batch_push_partial_overflow_sheds_exactly_the_overflow() {
        let q = IngressQueue::new(4);
        let result = q.try_push_batch((0..2).map(msg).collect(), Backpressure::ShedOldest);
        assert_eq!((result.enqueued, result.shed), (2, 0));
        let result = q.try_push_batch((2..6).map(msg).collect(), Backpressure::ShedOldest);
        assert_eq!((result.enqueued, result.shed), (4, 2));
        assert_eq!(q.counters(), (6, 0, 2));
        assert_eq!(ids(&q.try_pop_batch(9)), vec![2, 3, 4, 5]);
    }

    /// Close-while-full under each policy: the producer's next attempt is
    /// rejected (never shed, never blocked), the backlog stays intact,
    /// and the counters charge the rejection exactly once.
    #[test]
    fn close_while_full_rejects_under_every_policy() {
        for policy in [
            Backpressure::Block,
            Backpressure::ShedOldest,
            Backpressure::Reject,
        ] {
            let q = IngressQueue::new(2);
            q.push(msg(0), Backpressure::Block);
            q.push(msg(1), Backpressure::Block);
            q.close();
            assert_eq!(q.try_push(msg(2), policy), TryPush::Rejected, "{policy:?}");
            assert!(q.would_accept(policy), "{policy:?}: close resolves parks");
            let batch = q.try_push_batch(vec![msg(3), msg(4)], policy);
            assert_eq!((batch.enqueued, batch.rejected), (0, 2), "{policy:?}");
            assert_eq!(q.counters(), (5, 3, 0), "{policy:?}");
            assert_eq!(ids(&q.try_pop_batch(9)), vec![0, 1], "{policy:?}");
            assert_eq!(q.pop_batch_blocking(4), None, "{policy:?}");
        }
    }

    /// Threaded smoke test of the real condvar path — no sleeps: whichever
    /// side runs first, the blocking producer must land its message once
    /// the consumer makes room.
    #[test]
    fn blocking_producer_and_consumer_make_progress() {
        let q = Arc::new(IngressQueue::new(1));
        q.push(msg(0), Backpressure::Block);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(msg(1), Backpressure::Block))
        };
        // Pop exactly one message; the producer fills the freed slot
        // (before or after we pop — both orders end identically).
        let popped = q.pop_batch_blocking(1).expect("open queue yields batch");
        assert_eq!(popped.len(), 1);
        assert_eq!(producer.join().unwrap(), PushOutcome::Enqueued);
        assert_eq!(q.len(), 1);
    }

    /// Threaded smoke test: close wakes a producer stuck on a full queue
    /// with a rejection (or rejects it on entry — either order is a
    /// rejection), and the consumer still drains the backlog.
    #[test]
    fn close_terminates_blocking_producer_with_rejection() {
        let q = Arc::new(IngressQueue::new(1));
        q.push(msg(0), Backpressure::Block);
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(msg(1), Backpressure::Block))
        };
        q.close();
        assert_eq!(producer.join().unwrap(), PushOutcome::Rejected);
        assert_eq!(q.pop_batch_blocking(4).map(|b| b.len()), Some(1));
        assert_eq!(q.pop_batch_blocking(4), None);
    }

    /// Threaded smoke test: a consumer parked on an empty queue is woken
    /// by the first push, without any timing assumptions.
    #[test]
    fn consumer_wakes_on_push() {
        let q = Arc::new(IngressQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch_blocking(4))
        };
        q.push(msg(7), Backpressure::Block);
        let batch = consumer.join().unwrap().expect("open queue yields batch");
        assert_eq!(batch[0].id, 7);
    }

    /// Threaded smoke test: a parked consumer is woken by a batched
    /// publication (one tail store for the whole frame), and a blocking
    /// batch producer lands an oversized frame as the consumer drains —
    /// no sleeps, both sides keyed purely on queue state.
    #[test]
    fn batched_publication_wakes_consumer_and_blocking_batch_completes() {
        let q = Arc::new(IngressQueue::new(2));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(batch) = q.pop_batch_blocking(2) {
                    seen.extend(ids(&batch));
                }
                seen
            })
        };
        let result = q.push_batch((0..7).map(msg).collect(), Backpressure::Block);
        assert_eq!(result.enqueued, 7);
        assert!(result.blocked.is_empty());
        q.close();
        let seen = consumer.join().unwrap();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6], "FIFO across parks");
        assert_eq!(q.counters(), (7, 0, 0));
    }
}
