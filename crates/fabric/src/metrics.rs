//! Per-shard metrics: counters plus log-bucketed latency histograms,
//! snapshotted to JSON.
//!
//! The histogram generalizes `switchsim::Stats::wait_histogram` (linear,
//! 33 buckets) to logarithmic buckets, so a fabric that keeps messages
//! waiting for thousands of frames still resolves its tail: bucket 0
//! holds zero-frame waits and bucket `k ≥ 1` holds waits in
//! `[2^(k-1), 2^k)`, with the final bucket absorbing everything beyond.
//! Percentiles carry the same saturation flag as
//! `Stats::wait_percentile_bounded`: a percentile landing in the absorbing
//! bucket is only a lower bound.

use serde::{Deserialize, Serialize};
use serde_json::{object, ToJson, Value};

/// A log₂-bucketed histogram of non-negative integer samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// `buckets[0]` counts zeros; `buckets[k]` counts samples in
    /// `[2^(k-1), 2^k)`; the last bucket absorbs the overflow.
    pub buckets: Vec<u64>,
    /// Sum of all recorded samples.
    pub total: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: vec![0; Self::BUCKETS],
            total: 0,
        }
    }
}

impl LogHistogram {
    /// Bucket count: zeros, 30 doubling ranges, one absorbing bucket.
    pub const BUCKETS: usize = 32;

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(Self::BUCKETS - 1)
        }
    }

    /// The smallest sample value a bucket can hold.
    pub fn bucket_floor(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else {
            1 << (bucket - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.total = self.total.saturating_add(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.total as f64 / count as f64
        }
    }

    /// The p-th percentile (0 < p ≤ 100) as `(floor, saturated)`: the
    /// lower edge of the bucket the percentile lands in, and whether that
    /// bucket is the absorbing final one (making the value a lower bound).
    pub fn percentile(&self, p: f64) -> (u64, bool) {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        let count = self.count();
        if count == 0 {
            return (0, false);
        }
        let threshold = (p / 100.0 * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= threshold {
                return (Self::bucket_floor(bucket), bucket == Self::BUCKETS - 1);
            }
        }
        (Self::bucket_floor(Self::BUCKETS - 1), true)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.total = self.total.saturating_add(other.total);
    }

    /// The bucket-wise difference `self - baseline`, saturating at zero:
    /// the histogram of samples recorded *since* `baseline` was captured,
    /// assuming `baseline` is an earlier snapshot of the same monotone
    /// counters. The SLO controller uses this to read interval (not
    /// lifetime) tail latency from cumulative wait histograms.
    pub fn delta(&self, baseline: &LogHistogram) -> LogHistogram {
        let mut out = LogHistogram::default();
        for (bucket, (mine, theirs)) in self.buckets.iter().zip(&baseline.buckets).enumerate() {
            out.buckets[bucket] = mine.saturating_sub(*theirs);
        }
        out.total = self.total.saturating_sub(baseline.total);
        out
    }
}

impl ToJson for LogHistogram {
    fn to_json(&self) -> Value {
        let (p50, p50_lb) = self.percentile(50.0);
        let (p99, p99_lb) = self.percentile(99.0);
        object([
            ("count", self.count().to_json()),
            ("mean", self.mean().to_json()),
            ("p50", p50.to_json()),
            ("p50_is_lower_bound", p50_lb.to_json()),
            ("p99", p99.to_json()),
            ("p99_is_lower_bound", p99_lb.to_json()),
            ("buckets", self.buckets.to_json()),
        ])
    }
}

/// Counters for one shard (or, merged, for a whole fabric).
///
/// The conservation identity every fabric mode maintains:
/// `offered = delivered + rejected + shed + retry_dropped + in-flight`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMetrics {
    /// Messages directed at this shard (accepted or not).
    pub offered: u64,
    /// Messages refused at admission (full queue under
    /// [`Backpressure::Reject`](crate::Backpressure), or the global
    /// admission cap).
    pub rejected: u64,
    /// Queued messages dropped to make room for newer arrivals
    /// ([`Backpressure::ShedOldest`](crate::Backpressure)).
    pub shed: u64,
    /// Messages delivered to an output wire.
    pub delivered: u64,
    /// Messages dropped after exhausting their retry budget.
    pub retry_dropped: u64,
    /// Re-offers of congestion losers (attempts beyond the first).
    pub retries: u64,
    /// Routing frames executed.
    pub frames: u64,
    /// Compiled 64-lane netlist sweeps dispatched.
    pub sweeps: u64,
    /// Largest pending-queue depth observed.
    pub max_pending: u64,
    /// Delivery-health EWMA in thousandths (1000 = meeting the analytic
    /// capacity bound). Zero only before the shard has executed a frame;
    /// merged snapshots report the *worst* shard.
    pub health_milli: u64,
    /// Times the shard entered quarantine.
    pub quarantines: u64,
    /// Frames executed while quarantined.
    pub quarantined_frames: u64,
    /// Chip faults currently injected into the shard's switch.
    pub faults_active: u64,
    /// Frames each delivered message waited from acceptance to delivery.
    pub wait_frames: LogHistogram,
}

impl ShardMetrics {
    /// All terminal outcomes that are not delivery.
    pub fn dropped(&self) -> u64 {
        self.rejected + self.shed + self.retry_dropped
    }

    /// Delivered messages per executed frame.
    pub fn throughput_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.delivered as f64 / self.frames as f64
        }
    }

    /// Delivered messages per compiled sweep — the batching win: the
    /// unbatched baseline pins this at ≤ 1.
    pub fn deliveries_per_sweep(&self) -> f64 {
        if self.sweeps == 0 {
            0.0
        } else {
            self.delivered as f64 / self.sweeps as f64
        }
    }

    /// Fold another shard's counters into this one.
    pub fn merge(&mut self, other: &ShardMetrics) {
        self.offered += other.offered;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.delivered += other.delivered;
        self.retry_dropped += other.retry_dropped;
        self.retries += other.retries;
        self.frames += other.frames;
        self.sweeps += other.sweeps;
        self.max_pending = self.max_pending.max(other.max_pending);
        // Health is a gauge, not a counter: a merged view reports the
        // least healthy shard (ignoring shards that never ran a frame).
        self.health_milli = match (self.health_milli, other.health_milli) {
            (0, h) | (h, 0) => h,
            (a, b) => a.min(b),
        };
        self.quarantines += other.quarantines;
        self.quarantined_frames += other.quarantined_frames;
        self.faults_active += other.faults_active;
        self.wait_frames.merge(&other.wait_frames);
    }
}

impl ToJson for ShardMetrics {
    fn to_json(&self) -> Value {
        object([
            ("offered", self.offered.to_json()),
            ("rejected", self.rejected.to_json()),
            ("shed", self.shed.to_json()),
            ("delivered", self.delivered.to_json()),
            ("retry_dropped", self.retry_dropped.to_json()),
            ("retries", self.retries.to_json()),
            ("frames", self.frames.to_json()),
            ("sweeps", self.sweeps.to_json()),
            ("max_pending", self.max_pending.to_json()),
            ("health_milli", self.health_milli.to_json()),
            ("quarantines", self.quarantines.to_json()),
            ("quarantined_frames", self.quarantined_frames.to_json()),
            ("faults_active", self.faults_active.to_json()),
            (
                "deliveries_per_sweep",
                self.deliveries_per_sweep().to_json(),
            ),
            ("wait_frames", self.wait_frames.to_json()),
        ])
    }
}

/// A point-in-time view of a whole fabric: per-shard metrics plus their
/// merge. `PartialEq` makes bit-determinism directly assertable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricSnapshot {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardMetrics>,
    /// Messages still queued (ingress + pending) when the snapshot was
    /// taken; zero after a completed drain.
    pub in_flight: u64,
}

impl FabricSnapshot {
    /// All shards merged into one counter set.
    pub fn totals(&self) -> ShardMetrics {
        let mut totals = ShardMetrics::default();
        for shard in &self.shards {
            totals.merge(shard);
        }
        totals
    }

    /// Whether `offered = delivered + dropped + in_flight` holds.
    pub fn conserved(&self) -> bool {
        let t = self.totals();
        t.offered == t.delivered + t.dropped() + self.in_flight
    }
}

impl ToJson for FabricSnapshot {
    fn to_json(&self) -> Value {
        object([
            ("totals", self.totals().to_json()),
            ("in_flight", self.in_flight.to_json()),
            ("shards", self.shards.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_buckets_partition_the_range() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(
            LogHistogram::bucket_index(u64::MAX),
            LogHistogram::BUCKETS - 1
        );
        // Every bucket's floor indexes back into itself.
        for b in 0..LogHistogram::BUCKETS {
            assert_eq!(LogHistogram::bucket_index(LogHistogram::bucket_floor(b)), b);
        }
    }

    #[test]
    fn percentiles_report_floors_and_saturation() {
        let mut h = LogHistogram::default();
        for _ in 0..90 {
            h.record(0);
        }
        for _ in 0..9 {
            h.record(5); // bucket 3, floor 4
        }
        h.record(u64::MAX); // absorbing bucket
        assert_eq!(h.percentile(50.0), (0, false));
        assert_eq!(h.percentile(99.0), (4, false));
        assert_eq!(
            h.percentile(100.0),
            (LogHistogram::bucket_floor(LogHistogram::BUCKETS - 1), true)
        );
        assert_eq!(LogHistogram::default().percentile(99.0), (0, false));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::default();
        a.record(3);
        let mut b = LogHistogram::default();
        b.record(3);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total, 106);
        assert_eq!(a.buckets[2], 2);
    }

    #[test]
    fn delta_recovers_the_interval() {
        let mut baseline = LogHistogram::default();
        baseline.record(3);
        baseline.record(100);
        let mut later = baseline.clone();
        later.record(7); // bucket 3
        later.record(7);
        let interval = later.delta(&baseline);
        assert_eq!(interval.count(), 2);
        assert_eq!(interval.total, 14);
        assert_eq!(interval.buckets[3], 2);
        assert_eq!(interval.percentile(99.0), (4, false));
        // Delta against a *newer* snapshot saturates instead of wrapping.
        let backwards = baseline.delta(&later);
        assert_eq!(backwards.count(), 0);
    }

    #[test]
    fn snapshot_conservation_and_json() {
        let mut shard = ShardMetrics {
            offered: 10,
            rejected: 1,
            shed: 2,
            delivered: 5,
            retry_dropped: 1,
            ..ShardMetrics::default()
        };
        shard.wait_frames.record(0);
        let snapshot = FabricSnapshot {
            shards: vec![shard],
            in_flight: 1,
        };
        assert!(snapshot.conserved());
        let json = serde_json::to_string_pretty(&snapshot).unwrap();
        let value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["totals"]["offered"].as_u64(), Some(10));
        assert_eq!(value["in_flight"].as_u64(), Some(1));
        assert_eq!(value["shards"].as_array().map(Vec::len), Some(1));
    }
}
