//! Service configuration: shard placement, queue bounds, backpressure,
//! admission control, and retry budgets.

use serde::{Deserialize, Serialize};
use switchsim::CongestionPolicy;

/// How submitted messages are spread across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Each message goes to the next shard in rotation — even load, but a
    /// source's messages interleave across shards.
    RoundRobin,
    /// Shard chosen by hashing the message's source wire — all traffic
    /// from one source lands on one shard (preserves per-source FIFO
    /// delivery order, but skewed sources skew the shards).
    SourceHash,
}

impl Placement {
    /// The shard index for a message from `source`, given `shards` shards
    /// and the round-robin `cursor` (ignored by [`Placement::SourceHash`]).
    pub fn place(self, source: usize, cursor: usize, shards: usize) -> usize {
        debug_assert!(shards > 0);
        match self {
            Placement::RoundRobin => cursor % shards,
            // Fibonacci hashing: spreads consecutive sources uniformly
            // and deterministically.
            Placement::SourceHash => {
                ((source as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shards
            }
        }
    }
}

/// Steer a preferred placement away from quarantined shards — the one
/// scan both execution modes (and the simulation harness's oracles) share:
/// keep `preferred` when healthy, otherwise take the next healthy shard in
/// a deterministic wrapping scan. If every shard is quarantined the
/// preferred one keeps the traffic — degraded service beats none.
pub fn steer_scan(preferred: usize, shards: usize, quarantined: impl Fn(usize) -> bool) -> usize {
    debug_assert!(preferred < shards);
    if !quarantined(preferred) {
        return preferred;
    }
    (1..shards)
        .map(|step| (preferred + step) % shards)
        .find(|&idx| !quarantined(idx))
        .unwrap_or(preferred)
}

/// What happens when a message arrives at a full ingress queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backpressure {
    /// The submitter waits for space: blocking in the threaded service,
    /// a [`SubmitOutcome::Backpressured`](crate::SubmitOutcome) hand-back
    /// (re-offer next tick) in the synchronous engine.
    Block,
    /// The oldest queued message is dropped to admit the new one.
    ShedOldest,
    /// The new message is rejected.
    Reject,
}

/// How many extra send attempts an unrouted (congested) message is
/// granted before the fabric drops it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryBudget {
    /// `None` means retry until delivered (the queue bound is the only
    /// limit); `Some(k)` allows `k` re-offers after the first attempt.
    pub budget: Option<usize>,
}

impl RetryBudget {
    /// Retry until delivered.
    pub const UNLIMITED: RetryBudget = RetryBudget { budget: None };

    /// Exactly `k` re-offers after the first attempt.
    pub const fn limited(k: usize) -> RetryBudget {
        RetryBudget { budget: Some(k) }
    }

    /// Whether a message that has already made `attempts` unsuccessful
    /// attempts may be re-offered.
    pub fn allows(self, attempts: usize) -> bool {
        match self.budget {
            None => true,
            Some(k) => attempts <= k,
        }
    }
}

/// The fabric honours the paper's §1 congestion-control taxonomy: each
/// [`CongestionPolicy`] maps onto a retry budget with the same semantics
/// (drop = no retries, input buffering = retry while queued, ack-resend =
/// a bounded resend budget).
impl From<CongestionPolicy> for RetryBudget {
    fn from(policy: CongestionPolicy) -> RetryBudget {
        match policy {
            CongestionPolicy::Drop => RetryBudget::limited(0),
            CongestionPolicy::InputBuffer { .. } => RetryBudget::UNLIMITED,
            CongestionPolicy::AckResend { max_retries } => RetryBudget::limited(max_retries),
        }
    }
}

/// Shard health monitoring and quarantine thresholds.
///
/// Every executed frame updates a per-shard delivery-health EWMA: the
/// frame's delivered count over what the switch's analytic capacity bound
/// says it *should* have delivered (`min(batched, ⌊α·m⌋)` for a partial
/// concentrator of guarantee `α` — Lemma 2's capacity floor — and
/// `min(batched, m)` otherwise). A healthy shard holds the EWMA near 1;
/// chip faults pull it down. Once the EWMA has `min_frames` of history
/// and sinks below `quarantine_below`, the shard is quarantined: it keeps
/// draining its own backlog, but placement steers *new* traffic to
/// healthy shards. Recovery uses a higher threshold (`recover_above`),
/// the usual hysteresis so a borderline shard does not flap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthPolicy {
    /// EWMA weight of the newest frame, in `(0, 1]`.
    pub alpha: f64,
    /// Enter quarantine when the EWMA drops below this.
    pub quarantine_below: f64,
    /// Leave quarantine when the EWMA recovers above this (hysteresis;
    /// should exceed `quarantine_below`).
    pub recover_above: f64,
    /// Executed frames before the EWMA is trusted for quarantine calls.
    pub min_frames: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            alpha: 0.25,
            quarantine_below: 0.7,
            recover_above: 0.85,
            min_frames: 4,
        }
    }
}

impl HealthPolicy {
    /// Validate invariants.
    ///
    /// # Panics
    /// If the smoothing weight or thresholds are out of range.
    pub fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "EWMA weight must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.quarantine_below),
            "quarantine threshold must be in [0, 1]"
        );
        assert!(
            self.recover_above >= self.quarantine_below,
            "recovery threshold below quarantine threshold would flap"
        );
    }
}

/// Full configuration of a fabric instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Independent switch-serving shards at startup.
    pub shards: usize,
    /// Upper bound on concurrently pre-allocated shard lanes: the elastic
    /// control plane ([`crate::reconfig`]) can grow the fabric up to this
    /// many shards at runtime. Lanes are monotonic — a removed shard's
    /// lane retires rather than being reused — so this also bounds the
    /// number of `add_shard` operations over the service's lifetime.
    pub max_shards: usize,
    /// Message → shard placement.
    pub placement: Placement,
    /// Per-shard ingress bound (messages queued awaiting a frame slot).
    pub queue_capacity: usize,
    /// Policy at a full ingress queue.
    pub backpressure: Backpressure,
    /// Admission control: reject outright once this many messages are in
    /// flight across the whole fabric, regardless of per-queue headroom.
    /// `None` disables the global cap.
    pub admission_limit: Option<usize>,
    /// Re-offer budget for congestion losers.
    pub retry: RetryBudget,
    /// Shard health monitoring and quarantine thresholds.
    pub health: HealthPolicy,
}

impl FabricConfig {
    /// A sensible default: round-robin over `shards` shards, 1024-deep
    /// queues, blocking backpressure, unlimited retries (input-buffer
    /// semantics), no global admission cap.
    pub fn new(shards: usize) -> FabricConfig {
        FabricConfig {
            shards,
            max_shards: shards,
            placement: Placement::RoundRobin,
            queue_capacity: 1024,
            backpressure: Backpressure::Block,
            admission_limit: None,
            retry: RetryBudget::UNLIMITED,
            health: HealthPolicy::default(),
        }
    }

    /// Validate invariants.
    ///
    /// # Panics
    /// If `shards` or `queue_capacity` is zero.
    pub fn validate(&self) {
        assert!(self.shards > 0, "need at least one shard");
        assert!(
            self.max_shards >= self.shards,
            "max_shards must cover the startup shard count"
        );
        assert!(self.queue_capacity > 0, "queue capacity must be positive");
        if let Some(limit) = self.admission_limit {
            assert!(limit > 0, "admission limit must be positive");
        }
        self.health.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congestion_policies_map_to_retry_budgets() {
        assert_eq!(
            RetryBudget::from(CongestionPolicy::Drop),
            RetryBudget::limited(0)
        );
        assert_eq!(
            RetryBudget::from(CongestionPolicy::InputBuffer { capacity: 4 }),
            RetryBudget::UNLIMITED
        );
        assert_eq!(
            RetryBudget::from(CongestionPolicy::AckResend { max_retries: 3 }),
            RetryBudget::limited(3)
        );
    }

    #[test]
    fn retry_budget_allows() {
        assert!(!RetryBudget::limited(0).allows(1));
        assert!(RetryBudget::limited(2).allows(2));
        assert!(!RetryBudget::limited(2).allows(3));
        assert!(RetryBudget::UNLIMITED.allows(usize::MAX));
    }

    #[test]
    fn round_robin_cycles_and_hash_is_stable() {
        let placed: Vec<usize> = (0..6)
            .map(|c| Placement::RoundRobin.place(0, c, 3))
            .collect();
        assert_eq!(placed, vec![0, 1, 2, 0, 1, 2]);
        for source in 0..64 {
            let a = Placement::SourceHash.place(source, 0, 4);
            let b = Placement::SourceHash.place(source, 17, 4);
            assert_eq!(a, b, "hash placement ignores the cursor");
            assert!(a < 4);
        }
        // The hash spreads 64 consecutive sources over all 4 shards.
        let mut seen = [false; 4];
        for source in 0..64 {
            seen[Placement::SourceHash.place(source, 0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let mut config = FabricConfig::new(1);
        config.shards = 0;
        config.max_shards = 0;
        config.validate();
    }

    #[test]
    #[should_panic(expected = "max_shards must cover")]
    fn max_shards_below_startup_rejected() {
        let mut config = FabricConfig::new(4);
        config.max_shards = 2;
        config.validate();
    }
}
