//! One serving shard: a pending-request queue in front of one switch
//! instance, with a batching executor that packs requests into routing
//! frames and transports every payload through the switch's *compiled*
//! gate-level datapath — one 64-lane SWAR sweep per 64 payload cycles.
//!
//! All shards of a fabric share one [`StagedSwitch`] (the switches are
//! stateless combinational logic), so the expensive elaborate-and-compile
//! step runs **once** through the switch's `concentrator::elab` cache and
//! every shard holds the same `Arc<Elaboration>`; what is per-shard is the
//! mutable state: the pending queue, the evaluation scratch, the lane
//! buffers, and the metrics.

use std::collections::VecDeque;
use std::sync::Arc;

use concentrator::faults::{ChipFault, FaultySwitch};
use concentrator::spec::{ConcentratorKind, ConcentratorSwitch};
use concentrator::{Elaboration, StagedSwitch};
use netlist::{CompiledNetlist, EvalScratch, WORD_BITS};
use switchsim::Message;

use crate::config::{HealthPolicy, RetryBudget};
use crate::metrics::ShardMetrics;

/// A message waiting in a shard with its bookkeeping.
#[derive(Debug, Clone)]
struct Ticket {
    message: Message,
    /// Unsuccessful send attempts so far.
    attempts: usize,
    /// Shard frame counter when the message was accepted.
    born_frame: u64,
}

/// One delivered message with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Shard that served the request.
    pub shard: usize,
    /// Output wire the message arrived on.
    pub output: usize,
    /// The message, payload reassembled from the wire bits.
    pub message: Message,
    /// Frames waited from acceptance to delivery.
    pub waited_frames: u64,
}

/// What one executed frame did — returned so callers (and the equivalence
/// tests) can cross-check the batch against the single-frame reference.
#[derive(Debug, Clone, Default)]
pub struct FrameRun {
    /// The messages offered to the switch this frame (≤ 1 per input wire).
    pub offered: Vec<Message>,
    /// Deliveries completed this frame.
    pub delivered: Vec<Delivery>,
    /// Messages dropped this frame after exhausting their retry budget.
    pub dropped: Vec<Message>,
}

/// The degraded execution engine of a shard with injected chip faults:
/// the message-level faulty router (the routing oracle) and the
/// fault-compiled datapath overlay (the payload transport), which runs at
/// the same 64-lane batch speed as the healthy engine. Derived from the
/// switch's shared faultable elaboration; owning the overlay here keeps
/// the shared cache healthy-only.
struct FaultedEngine {
    router: FaultySwitch,
    compiled: CompiledNetlist,
    scratch: EvalScratch,
}

/// A shard: pending queue + compiled-datapath batch executor + metrics.
pub struct Shard {
    id: usize,
    switch: Arc<StagedSwitch>,
    elab: Arc<Elaboration>,
    scratch: EvalScratch,
    word_in: Vec<u64>,
    word_out: Vec<u64>,
    pending: VecDeque<Ticket>,
    retry: RetryBudget,
    /// Frames this shard has executed (its local clock).
    clock: u64,
    /// Injected chip faults, when any (see [`Shard::set_faults`]).
    fault: Option<FaultedEngine>,
    health: HealthPolicy,
    /// Delivery-health EWMA against the analytic capacity bound.
    health_ewma: f64,
    quarantined: bool,
    /// Counters; public so the engine/service can fold in queue-side
    /// events (rejections, sheds) that never reach the shard proper.
    pub metrics: ShardMetrics,
}

impl Shard {
    /// Create shard `id` over the shared `switch`. The datapath
    /// elaboration comes from the switch's shared cache: the first shard
    /// pays the compile, the rest reuse it.
    pub fn new(id: usize, switch: Arc<StagedSwitch>, retry: RetryBudget) -> Shard {
        let elab = switch.datapath_logic(false);
        let scratch = elab.compiled.scratch();
        let word_in = vec![0u64; elab.compiled.input_count()];
        let word_out = vec![0u64; elab.compiled.output_count()];
        let metrics = ShardMetrics {
            health_milli: 1000,
            ..ShardMetrics::default()
        };
        Shard {
            id,
            switch,
            elab,
            scratch,
            word_in,
            word_out,
            pending: VecDeque::new(),
            retry,
            clock: 0,
            fault: None,
            health: HealthPolicy::default(),
            health_ewma: 1.0,
            quarantined: false,
            metrics,
        }
    }

    /// Replace the health policy (builder style; the engine and service
    /// propagate [`crate::FabricConfig::health`] through this).
    pub fn with_health_policy(mut self, policy: HealthPolicy) -> Shard {
        policy.validate();
        self.health = policy;
        self
    }

    /// Shard id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Inject (or, with an empty set, clear) chip faults. The faulted
    /// engine is derived from the switch's shared faultable elaboration:
    /// routing goes through the message-level [`FaultySwitch`] reference
    /// and payload transport through a fault-compiled overlay of the
    /// tapped datapath, leaving the shared elaboration cache untouched.
    ///
    /// # Panics
    /// If a fault names a stage or chip the switch does not have.
    pub fn set_faults(&mut self, faults: Vec<ChipFault>) {
        self.metrics.faults_active = faults.len() as u64;
        if faults.is_empty() {
            self.fault = None;
            return;
        }
        let elab = self.switch.faultable_logic();
        let compiled = elab.compile_faulted(&faults);
        let scratch = compiled.scratch();
        self.fault = Some(FaultedEngine {
            router: FaultySwitch::new(Arc::clone(&self.switch), faults),
            compiled,
            scratch,
        });
    }

    /// The chip faults currently injected (empty when healthy).
    pub fn active_faults(&self) -> &[ChipFault] {
        self.fault.as_ref().map_or(&[], |f| f.router.faults())
    }

    /// Whether the health monitor has quarantined this shard.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// The delivery-health EWMA (1.0 = meeting the capacity bound).
    pub fn health(&self) -> f64 {
        self.health_ewma
    }

    /// Messages waiting for a frame slot.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The switch this shard serves.
    pub fn switch(&self) -> &Arc<StagedSwitch> {
        &self.switch
    }

    /// Install a recompiled replacement switch — the worker-side half of
    /// the live swap protocol (see [`crate::reconfig`]). The caller (the
    /// worker core) invokes this only once its pending queue is empty, so
    /// every frame admitted under the old epoch has completed on the old
    /// switch; messages still in the ingress ring route on the new switch
    /// from their first frame. The replacement must cover the old input
    /// range (`n` may only grow) so no queued message's source wire
    /// disappears — that is what makes the swap zero-loss by construction.
    ///
    /// Installing clears any injected fault overlay: the faults were
    /// compiled against the *old* topology, and swapping in a
    /// fault-recompiled netlist is exactly how a quarantined shard is
    /// repaired. Health history likewise judged the old switch, so the
    /// EWMA restarts trusted and the existing hysteresis re-quarantines
    /// the shard only if the new switch underperforms.
    ///
    /// # Panics
    /// If the pending queue is non-empty, or the replacement's `n` is
    /// smaller than the old switch's.
    pub fn install_switch(&mut self, switch: Arc<StagedSwitch>) {
        assert!(
            self.pending.is_empty(),
            "shard {}: switch install requires an empty pending queue \
             (old-epoch frames must complete on the old switch first)",
            self.id
        );
        assert!(
            switch.n >= self.switch.n,
            "shard {}: replacement switch must cover the old input range \
             (new n = {} < old n = {})",
            self.id,
            switch.n,
            self.switch.n
        );
        let elab = switch.datapath_logic(false);
        self.scratch = elab.compiled.scratch();
        self.word_in = vec![0u64; elab.compiled.input_count()];
        self.word_out = vec![0u64; elab.compiled.output_count()];
        self.elab = elab;
        self.switch = switch;
        self.fault = None;
        self.metrics.faults_active = 0;
        self.health_ewma = 1.0;
        self.metrics.health_milli = 1000;
    }

    /// The analytic per-frame capacity bound this shard's health monitor
    /// judges frames against: `⌊α·m⌋` for a partial concentrator of
    /// guarantee `α` (Lemma 2's capacity floor), `m` otherwise, and at
    /// least 1. A healthy shard offered `k ≤ bound` messages in one frame
    /// delivers all `k`; the simulation harness's capacity oracle checks
    /// exactly this.
    pub fn capacity_bound(&self) -> u64 {
        let m = self.switch.m as f64;
        let alpha = match self.switch.kind {
            ConcentratorKind::Partial { alpha } => alpha,
            ConcentratorKind::Hyperconcentrator | ConcentratorKind::Perfect => 1.0,
        };
        ((alpha * m).floor() as u64).max(1)
    }

    /// Shard-local frame counter.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Accept a message into the pending queue. The caller has already
    /// applied admission control and backpressure; this always enqueues.
    pub fn accept(&mut self, message: Message) {
        assert!(
            message.source < self.switch.n,
            "message source {} out of range for n = {}",
            message.source,
            self.switch.n
        );
        self.pending.push_back(Ticket {
            message,
            attempts: 0,
            born_frame: self.clock,
        });
        self.metrics.max_pending = self.metrics.max_pending.max(self.pending.len() as u64);
    }

    /// Drop the oldest pending message (shed-oldest backpressure),
    /// returning it if the queue was non-empty. Counts as `shed`.
    pub fn shed_oldest(&mut self) -> Option<Message> {
        let ticket = self.pending.pop_front()?;
        self.metrics.shed += 1;
        Some(ticket.message)
    }

    /// Run one routing frame: pack pending messages onto free input wires
    /// (FIFO, at most one per wire), route, transport every payload
    /// through the compiled datapath, deliver winners, and re-queue or
    /// drop congestion losers per the retry budget.
    ///
    /// A shard with nothing pending executes nothing and returns an empty
    /// run (frames and sweeps only count real work).
    pub fn run_frame(&mut self) -> FrameRun {
        if self.pending.is_empty() {
            return FrameRun::default();
        }
        let n = self.switch.n;
        let m = self.switch.m;

        // Pack: claim input wires in FIFO order; conflicting tickets stay
        // queued (in order) for a later frame.
        let mut by_input: Vec<Option<Ticket>> = (0..n).map(|_| None).collect();
        let mut stay = VecDeque::with_capacity(self.pending.len());
        let mut batched = 0usize;
        for ticket in self.pending.drain(..) {
            let slot = &mut by_input[ticket.message.source];
            if slot.is_none() {
                *slot = Some(ticket);
                batched += 1;
            } else {
                stay.push_back(ticket);
            }
        }
        self.pending = stay;
        debug_assert!(batched > 0);

        // Setup cycle: the valid bits establish the electrical paths —
        // through the faulty router when faults are injected, so the
        // routing oracle and the datapath degrade together.
        let valid: Vec<bool> = by_input.iter().map(Option::is_some).collect();
        let routing = match &self.fault {
            Some(faulted) => faulted.router.route(&valid),
            None => self.switch.route(&valid),
        };

        // Payload cycles through the compiled datapath netlist: the valid
        // rail holds the frozen setup pattern on every lane, the data rail
        // carries one payload bit per lane — 64 clock cycles per sweep.
        let cycles = by_input
            .iter()
            .flatten()
            .map(|t| t.message.bit_len())
            .max()
            .unwrap_or(0);
        let mut received: Vec<Vec<bool>> = vec![Vec::with_capacity(cycles); m];
        let mut cycle = 0usize;
        while cycle < cycles {
            let lanes = (cycles - cycle).min(WORD_BITS);
            let lane_mask = if lanes == WORD_BITS {
                !0u64
            } else {
                (1u64 << lanes) - 1
            };
            for i in 0..n {
                self.word_in[i] = if valid[i] { lane_mask } else { 0 };
                let mut data = 0u64;
                if let Some(ticket) = &by_input[i] {
                    let msg = &ticket.message;
                    let last = msg.bit_len().min(cycle + lanes);
                    for (lane, c) in (cycle..last).enumerate() {
                        data |= (msg.bit(c) as u64) << lane;
                    }
                }
                self.word_in[n + i] = data;
            }
            match &mut self.fault {
                Some(faulted) => faulted.compiled.eval_word_into(
                    &self.word_in,
                    &mut faulted.scratch,
                    &mut self.word_out,
                ),
                None => self.elab.compiled.eval_word_into(
                    &self.word_in,
                    &mut self.scratch,
                    &mut self.word_out,
                ),
            }
            self.metrics.sweeps += 1;
            for (out, src) in routing.output_source.iter().enumerate() {
                if src.is_some() {
                    debug_assert_eq!(
                        self.word_out[out] & lane_mask,
                        lane_mask,
                        "routed output {out} lost its valid bit in the netlist"
                    );
                    let data = self.word_out[m + out];
                    for lane in 0..lanes {
                        received[out].push(data >> lane & 1 == 1);
                    }
                }
            }
            cycle += lanes;
        }

        // Deliver winners, reassembling payloads from the arrived bits.
        let mut run = FrameRun {
            offered: by_input
                .iter()
                .flatten()
                .map(|t| t.message.clone())
                .collect(),
            ..FrameRun::default()
        };
        for (out, src) in routing.output_source.iter().enumerate() {
            if let Some(src) = src {
                let ticket = by_input[*src].take().expect("routed inputs carry tickets");
                let payload =
                    Message::payload_from_bits(&received[out][..ticket.message.bit_len()]);
                let waited = self.clock - ticket.born_frame;
                self.metrics.delivered += 1;
                self.metrics.wait_frames.record(waited);
                run.delivered.push(Delivery {
                    shard: self.id,
                    output: out,
                    message: Message {
                        id: ticket.message.id,
                        source: ticket.message.source,
                        payload,
                    },
                    waited_frames: waited,
                });
            }
        }

        // Congestion losers: retry within budget (re-queued at the front,
        // preserving age order), or drop.
        let mut requeue: Vec<Ticket> = Vec::new();
        for slot in by_input.into_iter() {
            let Some(mut ticket) = slot else { continue };
            ticket.attempts += 1;
            if self.retry.allows(ticket.attempts) {
                self.metrics.retries += 1;
                requeue.push(ticket);
            } else {
                self.metrics.retry_dropped += 1;
                run.dropped.push(ticket.message);
            }
        }
        for ticket in requeue.into_iter().rev() {
            self.pending.push_front(ticket);
        }

        self.metrics.frames += 1;
        self.clock += 1;
        self.update_health(batched as u64, run.delivered.len() as u64);
        run
    }

    /// Fold one executed frame into the delivery-health EWMA and apply the
    /// quarantine state machine. The denominator is the analytic capacity
    /// bound: a partial concentrator of guarantee `α` owes `⌊α·m⌋`
    /// deliveries per saturated frame (Lemma 2), so congestion beyond the
    /// bound does not read as ill health — only faults do.
    fn update_health(&mut self, batched: u64, delivered: u64) {
        let expected = batched.min(self.capacity_bound()).max(1);
        let ratio = (delivered as f64 / expected as f64).min(1.0);
        self.health_ewma += self.health.alpha * (ratio - self.health_ewma);
        self.metrics.health_milli = (self.health_ewma * 1000.0).round() as u64;
        if self.metrics.frames >= self.health.min_frames {
            if !self.quarantined && self.health_ewma < self.health.quarantine_below {
                self.quarantined = true;
                self.metrics.quarantines += 1;
            } else if self.quarantined && self.health_ewma > self.health.recover_above {
                self.quarantined = false;
            }
        }
        if self.quarantined {
            self.metrics.quarantined_frames += 1;
        }
    }

    /// Run frames until the pending queue is empty (graceful drain),
    /// collecting deliveries. `max_frames` bounds the loop against a
    /// misconfigured switch that routes nothing.
    pub fn drain(&mut self, max_frames: u64) -> Vec<Delivery> {
        let mut deliveries = Vec::new();
        let mut frames = 0u64;
        while !self.pending.is_empty() {
            assert!(
                frames < max_frames,
                "shard {} failed to drain within {max_frames} frames",
                self.id
            );
            deliveries.extend(self.run_frame().delivered);
            frames += 1;
        }
        deliveries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};

    fn test_switch() -> Arc<StagedSwitch> {
        Arc::new(
            RevsortSwitch::new(16, 8, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        )
    }

    #[test]
    fn delivers_packed_batch_with_intact_payloads() {
        let mut shard = Shard::new(0, test_switch(), RetryBudget::UNLIMITED);
        for src in [1usize, 4, 9] {
            shard.accept(Message::new(src as u64, src, vec![0xA0 | src as u8, 0x5C]));
        }
        let run = shard.run_frame();
        assert_eq!(run.offered.len(), 3);
        assert_eq!(run.delivered.len(), 3);
        for d in &run.delivered {
            assert_eq!(d.message.payload[0], 0xA0 | d.message.source as u8);
            assert_eq!(d.message.payload[1], 0x5C);
            assert_eq!(d.waited_frames, 0);
        }
        assert_eq!(shard.metrics.frames, 1);
        // 16 payload cycles fit in one 64-lane sweep.
        assert_eq!(shard.metrics.sweeps, 1);
    }

    #[test]
    fn input_conflicts_wait_their_turn_in_fifo_order() {
        let mut shard = Shard::new(0, test_switch(), RetryBudget::UNLIMITED);
        shard.accept(Message::new(1, 3, vec![0x11]));
        shard.accept(Message::new(2, 3, vec![0x22]));
        shard.accept(Message::new(3, 3, vec![0x33]));
        let first = shard.run_frame();
        assert_eq!(first.offered.len(), 1, "one wire, one slot per frame");
        assert_eq!(first.delivered[0].message.id, 1);
        let second = shard.run_frame();
        assert_eq!(second.delivered[0].message.id, 2);
        assert_eq!(second.delivered[0].waited_frames, 1);
        let third = shard.run_frame();
        assert_eq!(third.delivered[0].message.id, 3);
        assert_eq!(shard.pending_len(), 0);
    }

    #[test]
    fn retry_budget_drops_persistent_losers() {
        // m = 4 ≪ n = 16: overload 12 inputs so some lose every frame.
        let switch = Arc::new(
            RevsortSwitch::new(16, 4, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        );
        let mut shard = Shard::new(0, switch, RetryBudget::limited(0));
        for src in 0..12 {
            shard.accept(Message::new(src as u64, src, vec![src as u8]));
        }
        let run = shard.run_frame();
        assert_eq!(run.delivered.len() + run.dropped.len(), 12);
        assert!(!run.dropped.is_empty(), "budget 0 drops every loser");
        assert_eq!(shard.pending_len(), 0);
        assert_eq!(shard.metrics.retry_dropped as usize, run.dropped.len());
    }

    #[test]
    fn drain_empties_the_shard() {
        let mut shard = Shard::new(0, test_switch(), RetryBudget::UNLIMITED);
        for i in 0..40u64 {
            shard.accept(Message::new(i, (i % 16) as usize, vec![i as u8]));
        }
        let deliveries = shard.drain(1000);
        assert_eq!(deliveries.len(), 40);
        assert_eq!(shard.pending_len(), 0);
        assert_eq!(shard.metrics.delivered, 40);
    }

    #[test]
    fn idle_shard_does_no_work() {
        let mut shard = Shard::new(0, test_switch(), RetryBudget::UNLIMITED);
        let run = shard.run_frame();
        assert!(run.offered.is_empty());
        assert_eq!(shard.metrics.frames, 0);
        assert_eq!(shard.metrics.sweeps, 0);
    }

    use concentrator::faults::FaultMode;

    #[test]
    fn faulted_shard_degrades_and_accounts_every_message() {
        let mut shard = Shard::new(0, test_switch(), RetryBudget::limited(0));
        shard.set_faults(vec![ChipFault {
            stage: 0,
            chip: 0,
            mode: FaultMode::StuckInvalid,
        }]);
        assert_eq!(shard.active_faults().len(), 1);
        assert_eq!(shard.metrics.faults_active, 1);
        for src in 0..16 {
            shard.accept(Message::new(src as u64, src, vec![0x40 | src as u8]));
        }
        let run = shard.run_frame();
        assert_eq!(run.delivered.len() + run.dropped.len(), 16);
        assert!(
            !run.dropped.is_empty(),
            "a dead first-stage chip must cost messages"
        );
        // Winners still carry intact payloads through the faulted netlist.
        for d in &run.delivered {
            assert_eq!(d.message.payload[0], 0x40 | d.message.source as u8);
        }
    }

    #[test]
    fn health_quarantines_on_faults_and_recovers_after_repair() {
        // Offer only the faulted chip's column, under the bound: every
        // frame delivers zero of an expected four, so the EWMA collapses.
        let mut shard = Shard::new(0, test_switch(), RetryBudget::limited(0));
        shard.set_faults(vec![ChipFault {
            stage: 0,
            chip: 0,
            mode: FaultMode::StuckInvalid,
        }]);
        // TwoDee 16→8: stage 0 chip 0 serves matrix column 0.
        let dead: Vec<usize> = (0..16).filter(|i| i % 4 == 0).collect();
        let mut frames = 0;
        while !shard.is_quarantined() {
            assert!(frames < 100, "health monitor never quarantined");
            for &src in &dead {
                shard.accept(Message::new(src as u64, src, vec![1]));
            }
            shard.run_frame();
            frames += 1;
        }
        assert!(shard.health() < 0.7);
        assert!(shard.metrics.quarantines == 1);
        assert!(shard.metrics.quarantined_frames > 0);
        // Repair: clear the faults and the same traffic now lands, so the
        // EWMA climbs back over the recovery threshold.
        shard.set_faults(Vec::new());
        assert_eq!(shard.metrics.faults_active, 0);
        let mut frames = 0;
        while shard.is_quarantined() {
            assert!(frames < 100, "health monitor never recovered");
            for &src in &dead {
                shard.accept(Message::new(src as u64, src, vec![1]));
            }
            shard.run_frame();
            frames += 1;
        }
        assert!(shard.health() > 0.85);
        assert_eq!(shard.metrics.quarantines, 1, "no re-entry after recovery");
    }

    #[test]
    fn install_switch_serves_wider_traffic_and_clears_faults() {
        let mut shard = Shard::new(0, test_switch(), RetryBudget::UNLIMITED);
        shard.set_faults(vec![ChipFault {
            stage: 0,
            chip: 0,
            mode: FaultMode::StuckInvalid,
        }]);
        shard.accept(Message::new(1, 1, vec![0x5A]));
        shard.drain(100);
        let bigger = Arc::new(
            RevsortSwitch::new(64, 16, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        );
        shard.install_switch(Arc::clone(&bigger));
        assert!(Arc::ptr_eq(shard.switch(), &bigger));
        assert!(shard.active_faults().is_empty());
        assert_eq!(shard.metrics.faults_active, 0);
        assert_eq!(shard.health(), 1.0);
        // Sources beyond the old n = 16 route on the new switch, payloads
        // intact through the freshly compiled datapath.
        for src in [3usize, 17, 45] {
            shard.accept(Message::new(src as u64, src, vec![0xC0 | src as u8]));
        }
        let run = shard.run_frame();
        assert_eq!(run.delivered.len(), 3);
        for d in &run.delivered {
            assert_eq!(d.message.payload[0], 0xC0 | d.message.source as u8);
        }
    }

    #[test]
    #[should_panic(expected = "empty pending queue")]
    fn install_with_old_epoch_backlog_is_refused() {
        let mut shard = Shard::new(0, test_switch(), RetryBudget::UNLIMITED);
        shard.accept(Message::new(1, 1, vec![1]));
        shard.install_switch(test_switch());
    }

    #[test]
    #[should_panic(expected = "cover the old input range")]
    fn install_of_a_narrower_switch_is_refused() {
        let mut shard = Shard::new(0, test_switch(), RetryBudget::UNLIMITED);
        let narrower = Arc::new(
            RevsortSwitch::new(4, 4, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        );
        shard.install_switch(narrower);
    }
}
