//! The synchronous fabric engine: deterministic sharded serving.
//!
//! [`Fabric`] is the single-threaded core of the subsystem: `submit` runs
//! placement, admission control, and backpressure; `tick` runs one
//! batched routing frame on every shard. Every decision is a pure
//! function of the submission order, so a fixed workload produces a
//! bit-identical [`FabricSnapshot`] on every run — this is the engine the
//! benches use for their reproducibility claims, and the reference the
//! threaded [`FabricService`](crate::FabricService) is tested against.

use std::sync::Arc;

use concentrator::faults::ChipFault;
use concentrator::StagedSwitch;
use switchsim::Message;

use crate::config::{steer_scan, Backpressure, FabricConfig};
use crate::metrics::FabricSnapshot;
use crate::shard::{Delivery, FrameRun, Shard};

/// What happened to a submitted message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued on a shard.
    Accepted,
    /// Accepted after shedding the oldest queued message on the target
    /// shard ([`Backpressure::ShedOldest`]).
    AcceptedAfterShed,
    /// Refused: full queue under [`Backpressure::Reject`], or the global
    /// admission cap.
    Rejected,
    /// The target queue is full under [`Backpressure::Block`]: the
    /// message is handed back, and the closed-loop caller should re-offer
    /// it after the next [`Fabric::tick`] (the synchronous analogue of a
    /// blocked producer).
    Backpressured(Message),
}

/// A deterministic, synchronous sharded switch fabric.
pub struct Fabric {
    config: FabricConfig,
    shards: Vec<Shard>,
    rr_cursor: usize,
    completions: Vec<Delivery>,
    record_frames: bool,
    frame_records: Vec<FrameRun>,
}

impl Fabric {
    /// Build a fabric of `config.shards` shards over one shared switch.
    /// The switch's datapath netlist is elaborated and compiled once (via
    /// its `concentrator::elab` cache) and shared by every shard.
    ///
    /// # Panics
    /// If the configuration is invalid (see [`FabricConfig::validate`]).
    pub fn new(switch: Arc<StagedSwitch>, config: FabricConfig) -> Fabric {
        config.validate();
        let shards = (0..config.shards)
            .map(|id| {
                Shard::new(id, Arc::clone(&switch), config.retry).with_health_policy(config.health)
            })
            .collect();
        Fabric {
            config,
            shards,
            rr_cursor: 0,
            completions: Vec::new(),
            record_frames: false,
            frame_records: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Messages queued across all shards.
    pub fn in_flight(&self) -> usize {
        self.shards.iter().map(Shard::pending_len).sum()
    }

    /// Record every executed frame (offered set + outcomes) for
    /// cross-checking against the single-frame reference simulator.
    /// Off by default; costs one clone of each offered message.
    pub fn set_frame_recording(&mut self, on: bool) {
        self.record_frames = on;
    }

    /// Take the recorded frames accumulated since the last call.
    pub fn take_frame_records(&mut self) -> Vec<FrameRun> {
        std::mem::take(&mut self.frame_records)
    }

    /// Inject (or, with an empty vector, clear) chip faults on one shard's
    /// switch. Takes effect from the next frame; the shard's health EWMA
    /// and quarantine state respond over the following frames.
    pub fn inject_faults(&mut self, shard: usize, faults: Vec<ChipFault>) {
        self.shards[shard].set_faults(faults);
    }

    /// Whether a shard is currently quarantined by its health monitor.
    pub fn shard_quarantined(&self, shard: usize) -> bool {
        self.shards[shard].is_quarantined()
    }

    /// A shard's delivery-health EWMA (1.0 = meeting the capacity bound).
    pub fn shard_health(&self, shard: usize) -> f64 {
        self.shards[shard].health()
    }

    /// Steer a placement away from quarantined shards (the shared
    /// [`steer_scan`]): keep the preferred shard when healthy, otherwise
    /// the next healthy shard in a deterministic wrapping scan, otherwise
    /// the preferred one — degraded service beats none.
    fn steer(&self, preferred: usize) -> usize {
        steer_scan(preferred, self.config.shards, |idx| {
            self.shards[idx].is_quarantined()
        })
    }

    /// Submit one routing request. Applies admission control (global
    /// in-flight cap), placement (steered away from quarantined shards),
    /// and the configured backpressure policy.
    pub fn submit(&mut self, message: Message) -> SubmitOutcome {
        let shard_idx = self.steer(self.config.placement.place(
            message.source,
            self.rr_cursor,
            self.config.shards,
        ));
        // Admission control: shed load before it ever reaches a queue.
        if let Some(limit) = self.config.admission_limit {
            if self.in_flight() >= limit {
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                let shard = &mut self.shards[shard_idx];
                shard.metrics.offered += 1;
                shard.metrics.rejected += 1;
                return SubmitOutcome::Rejected;
            }
        }
        let capacity = self.config.queue_capacity;
        let shard = &mut self.shards[shard_idx];
        if shard.pending_len() >= capacity {
            match self.config.backpressure {
                Backpressure::Block => {
                    // Hand the message back without counting it offered:
                    // the producer still holds it.
                    return SubmitOutcome::Backpressured(message);
                }
                Backpressure::Reject => {
                    self.rr_cursor = self.rr_cursor.wrapping_add(1);
                    shard.metrics.offered += 1;
                    shard.metrics.rejected += 1;
                    return SubmitOutcome::Rejected;
                }
                Backpressure::ShedOldest => {
                    self.rr_cursor = self.rr_cursor.wrapping_add(1);
                    shard.metrics.offered += 1;
                    shard.shed_oldest();
                    shard.accept(message);
                    return SubmitOutcome::AcceptedAfterShed;
                }
            }
        }
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        shard.metrics.offered += 1;
        shard.accept(message);
        SubmitOutcome::Accepted
    }

    /// Run one batched routing frame on every shard with pending work.
    /// Deliveries accumulate in the completion buffer
    /// (see [`Fabric::take_completions`]).
    pub fn tick(&mut self) {
        for shard in &mut self.shards {
            let run = shard.run_frame();
            self.completions.extend(run.delivered.iter().cloned());
            if self.record_frames && !run.offered.is_empty() {
                self.frame_records.push(run);
            }
        }
    }

    /// Take all deliveries completed since the last call.
    pub fn take_completions(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.completions)
    }

    /// Tick until every shard is empty (graceful drain). `max_frames`
    /// bounds the loop; panics if the fabric cannot drain within it.
    pub fn drain(&mut self, max_frames: u64) {
        let mut frames = 0u64;
        while self.in_flight() > 0 {
            assert!(
                frames < max_frames,
                "fabric failed to drain within {max_frames} frames"
            );
            self.tick();
            frames += 1;
        }
    }

    /// Snapshot all per-shard metrics plus the in-flight count.
    pub fn snapshot(&self) -> FabricSnapshot {
        FabricSnapshot {
            shards: self.shards.iter().map(|s| s.metrics.clone()).collect(),
            in_flight: self.in_flight() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Placement;
    use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};

    fn fabric(config: FabricConfig) -> Fabric {
        let switch = Arc::new(
            RevsortSwitch::new(16, 8, RevsortLayout::TwoDee)
                .staged()
                .clone(),
        );
        Fabric::new(switch, config)
    }

    fn msg(id: u64, source: usize) -> Message {
        Message::new(id, source, vec![id as u8])
    }

    #[test]
    fn round_robin_spreads_and_delivers() {
        let mut f = fabric(FabricConfig::new(4));
        for i in 0..32u64 {
            assert_eq!(f.submit(msg(i, (i % 16) as usize)), SubmitOutcome::Accepted);
        }
        f.drain(100);
        let snapshot = f.snapshot();
        assert_eq!(snapshot.totals().delivered, 32);
        assert!(snapshot.conserved());
        for shard in &snapshot.shards {
            assert_eq!(shard.offered, 8, "round robin splits 32 four ways");
        }
        assert_eq!(f.take_completions().len(), 32);
    }

    #[test]
    fn reject_policy_bounds_the_queue() {
        let mut config = FabricConfig::new(1);
        config.queue_capacity = 4;
        config.backpressure = Backpressure::Reject;
        let mut f = fabric(config);
        let mut rejected = 0;
        for i in 0..10u64 {
            if f.submit(msg(i, (i % 16) as usize)) == SubmitOutcome::Rejected {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 6);
        assert_eq!(f.in_flight(), 4);
        f.drain(100);
        let snapshot = f.snapshot();
        assert_eq!(snapshot.totals().offered, 10);
        assert_eq!(snapshot.totals().rejected, 6);
        assert!(snapshot.conserved());
    }

    #[test]
    fn shed_oldest_keeps_the_newest() {
        let mut config = FabricConfig::new(1);
        config.queue_capacity = 2;
        config.backpressure = Backpressure::ShedOldest;
        let mut f = fabric(config);
        for i in 0..5u64 {
            let outcome = f.submit(msg(i, i as usize));
            assert_ne!(outcome, SubmitOutcome::Rejected);
        }
        f.drain(100);
        let mut ids: Vec<u64> = f.take_completions().iter().map(|d| d.message.id).collect();
        // Within one frame, deliveries come out in output-wire order.
        ids.sort_unstable();
        assert_eq!(ids, vec![3, 4], "oldest three were shed");
        let snapshot = f.snapshot();
        assert_eq!(snapshot.totals().shed, 3);
        assert!(snapshot.conserved());
    }

    #[test]
    fn block_policy_hands_the_message_back() {
        let mut config = FabricConfig::new(1);
        config.queue_capacity = 1;
        config.backpressure = Backpressure::Block;
        let mut f = fabric(config);
        assert_eq!(f.submit(msg(0, 0)), SubmitOutcome::Accepted);
        let held = match f.submit(msg(1, 1)) {
            SubmitOutcome::Backpressured(m) => m,
            other => panic!("expected backpressure, got {other:?}"),
        };
        // After a tick the queue drains and the held message goes in.
        f.tick();
        assert_eq!(f.submit(held), SubmitOutcome::Accepted);
        f.drain(100);
        let snapshot = f.snapshot();
        assert_eq!(snapshot.totals().offered, 2);
        assert_eq!(snapshot.totals().delivered, 2);
        assert!(snapshot.conserved());
    }

    #[test]
    fn admission_limit_rejects_above_cap() {
        let mut config = FabricConfig::new(2);
        config.admission_limit = Some(3);
        let mut f = fabric(config);
        let mut rejected = 0;
        for i in 0..8u64 {
            if f.submit(msg(i, i as usize)) == SubmitOutcome::Rejected {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 5, "cap of 3 in flight rejects the rest");
        f.drain(100);
        assert!(f.snapshot().conserved());
    }

    #[test]
    fn quarantined_shard_stops_receiving_new_traffic() {
        use concentrator::faults::FaultMode;
        let mut config = FabricConfig::new(2);
        config.retry = crate::config::RetryBudget::limited(0);
        let mut f = fabric(config);
        // Kill every first-stage chip on shard 0: nothing it routes lands.
        f.inject_faults(
            0,
            (0..4)
                .map(|chip| ChipFault {
                    stage: 0,
                    chip,
                    mode: FaultMode::StuckInvalid,
                })
                .collect(),
        );
        // Drive until the health monitor quarantines shard 0.
        let mut id = 0u64;
        while !f.shard_quarantined(0) {
            assert!(id < 10_000, "shard 0 never quarantined");
            for src in 0..16 {
                f.submit(msg(id, src));
                id += 1;
            }
            f.tick();
        }
        assert!(f.shard_health(0) < 0.7);
        assert!(
            !f.shard_quarantined(1),
            "healthy shard must stay in service"
        );
        // From here on, round-robin placements that prefer shard 0 are
        // steered to shard 1: shard 0's offered count freezes.
        f.drain(1_000);
        let before = f.snapshot();
        for src in 0..16 {
            f.submit(msg(id, src));
            id += 1;
        }
        f.drain(1_000);
        let snapshot = f.snapshot();
        assert_eq!(
            snapshot.shards[0].offered, before.shards[0].offered,
            "new traffic must steer away from the quarantined shard"
        );
        // All 16 steered messages terminate on the healthy shard (under
        // limited(0) retry, losers of a 16-into-8 frame drop).
        assert_eq!(
            snapshot.shards[1].delivered + snapshot.shards[1].retry_dropped,
            before.shards[1].delivered + before.shards[1].retry_dropped + 16,
            "the healthy shard must absorb the steered traffic"
        );
        assert!(snapshot.shards[1].delivered > before.shards[1].delivered);
        assert!(snapshot.conserved());
        assert_eq!(snapshot.totals().quarantines, 1);
        assert!(snapshot.totals().quarantined_frames > 0);
        assert_eq!(snapshot.totals().faults_active, 4);
    }

    #[test]
    fn failover_is_reproducible() {
        use concentrator::faults::FaultMode;
        let run = || {
            let mut config = FabricConfig::new(3);
            config.retry = crate::config::RetryBudget::limited(1);
            let mut f = fabric(config);
            for round in 0..40u64 {
                if round == 10 {
                    f.inject_faults(
                        1,
                        vec![ChipFault {
                            stage: 0,
                            chip: 2,
                            mode: FaultMode::StuckValid,
                        }],
                    );
                }
                for src in 0..16 {
                    f.submit(msg(round * 16 + src as u64, src as usize));
                }
                f.tick();
            }
            f.drain(10_000);
            f.snapshot()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same fault schedule must give identical snapshots");
        assert!(a.conserved());
    }

    #[test]
    fn all_shards_quarantined_still_accepts_traffic() {
        use concentrator::faults::FaultMode;
        let mut config = FabricConfig::new(2);
        config.retry = crate::config::RetryBudget::limited(0);
        let mut f = fabric(config);
        for shard in 0..2 {
            f.inject_faults(
                shard,
                (0..4)
                    .map(|chip| ChipFault {
                        stage: 0,
                        chip,
                        mode: FaultMode::StuckInvalid,
                    })
                    .collect(),
            );
        }
        let mut id = 0u64;
        while !(f.shard_quarantined(0) && f.shard_quarantined(1)) {
            assert!(id < 10_000, "shards never quarantined");
            for src in 0..16 {
                f.submit(msg(id, src));
                id += 1;
            }
            f.tick();
        }
        // With nowhere healthy to steer, the preferred shard keeps the
        // message rather than deadlocking placement.
        assert_eq!(f.submit(msg(id, 3)), SubmitOutcome::Accepted);
        f.drain(1_000);
        assert!(f.snapshot().conserved());
    }

    #[test]
    fn source_hash_placement_is_sticky() {
        let mut config = FabricConfig::new(4);
        config.placement = Placement::SourceHash;
        let mut f = fabric(config);
        for round in 0..3u64 {
            for src in 0..16usize {
                f.submit(msg(round * 16 + src as u64, src));
            }
            f.tick();
        }
        f.drain(100);
        // Every message from one source lands on one shard, so per-source
        // deliveries must come from a single shard id.
        let mut shard_of = [None; 16];
        for d in f.take_completions() {
            let slot = &mut shard_of[d.message.source];
            match slot {
                None => *slot = Some(d.shard),
                Some(s) => assert_eq!(*s, d.shard, "source {} moved shards", d.message.source),
            }
        }
    }
}
