//! Acceptance test for the compiled netlist engine: on real switch
//! netlists with n = 16 inputs, [`netlist::CompiledNetlist`] must be
//! bit-identical to the scalar interpreter [`netlist::Netlist::eval`]
//! across the *entire* 2^16-pattern truth table.

use concentrator::full_columnsort::FullColumnsortHyperconcentrator;
use concentrator::full_revsort::FullRevsortHyperconcentrator;
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::{ColumnsortSwitch, StagedSwitch};
use netlist::BitMatrix;

const CHUNK: usize = 4096;

/// Sweep the full truth table of `switch`'s control netlist through the
/// compiled engine in 4096-lane batches and compare every output bit
/// against the scalar interpreter.
fn assert_truth_table_identical(switch: &StagedSwitch, with_pads: bool) {
    let n = switch.n;
    assert!(n <= 16, "exhaustive sweep only feasible for small n");
    let elab = switch.control_logic(with_pads);
    let total = 1u64 << n;
    let mut scratch = Vec::new();
    let mut base = 0u64;
    while base < total {
        let count = CHUNK.min((total - base) as usize);
        let inputs = BitMatrix::from_fn(n, count, |row, v| (base + v as u64) >> row & 1 == 1);
        let out = elab.compiled.eval_matrix(&inputs);
        for v in 0..count {
            let pattern = base + v as u64;
            scratch.clear();
            scratch.extend((0..n).map(|i| pattern >> i & 1 == 1));
            let expected = elab.netlist.eval(&scratch);
            for (o, &bit) in expected.iter().enumerate() {
                assert_eq!(
                    out.get(o, v),
                    bit,
                    "{}: pattern {pattern:#06x}, output {o}",
                    switch.name
                );
            }
        }
        base += count as u64;
    }
}

#[test]
fn revsort_switch_n16_truth_table() {
    let switch = RevsortSwitch::new(16, 12, RevsortLayout::TwoDee);
    assert_truth_table_identical(switch.staged(), false);
}

#[test]
fn revsort_switch_n16_truth_table_with_pads() {
    let switch = RevsortSwitch::new(16, 12, RevsortLayout::TwoDee);
    assert_truth_table_identical(switch.staged(), true);
}

#[test]
fn columnsort_switch_n16_truth_table() {
    let switch = ColumnsortSwitch::new(4, 4, 12);
    assert_truth_table_identical(switch.staged(), false);
}

#[test]
fn full_columnsort_hyperconcentrator_n16_truth_table() {
    // Exercises hardwired Const(±∞) padding gates in the compiled form.
    let switch = FullColumnsortHyperconcentrator::new(8, 2);
    assert_truth_table_identical(switch.staged(), false);
}

#[test]
fn full_revsort_hyperconcentrator_n16_truth_table() {
    let switch = FullRevsortHyperconcentrator::new(16);
    assert_truth_table_identical(switch.staged(), false);
}

#[test]
fn revsort_n16_truth_table_every_lane_width_and_thread_count() {
    // Pin the instruction-stream emulator at every lane width (64/256/512
    // vectors per fetch) and thread count (1/2/4), plus the level-parallel
    // team sweep, against the scalar interpreter over the entire 2^16
    // truth table. One scalar sweep establishes the expected table; every
    // configuration must then be bit-identical to it.
    let switch = RevsortSwitch::new(16, 12, RevsortLayout::TwoDee);
    let elab = switch.staged().control_logic(true);
    let n = 16usize;
    let total = 1usize << n;
    let inputs = BitMatrix::from_fn(n, total, |row, v| v >> row & 1 == 1);

    let baseline = elab.compiled.eval_matrix_lanes(&inputs, 64, 1);
    assert!(baseline.tail_is_clear());
    let mut scratch = Vec::new();
    for pattern in (0..total).step_by(523) {
        scratch.clear();
        scratch.extend((0..n).map(|i| pattern >> i & 1 == 1));
        let expected = elab.netlist.eval(&scratch);
        for (o, &bit) in expected.iter().enumerate() {
            assert_eq!(
                baseline.get(o, pattern),
                bit,
                "pattern {pattern:#06x} output {o}"
            );
        }
    }

    for lanes in [64usize, 256, 512] {
        for threads in [1usize, 2, 4] {
            let out = elab.compiled.eval_matrix_lanes(&inputs, lanes, threads);
            assert!(out.tail_is_clear(), "lanes {lanes} threads {threads}");
            assert_eq!(out, baseline, "lanes {lanes} threads {threads}");
        }
    }
    for threads in [1usize, 2, 4] {
        let out = elab.compiled.eval_matrix_level_threads(&inputs, threads);
        assert!(out.tail_is_clear(), "level threads {threads}");
        assert_eq!(out, baseline, "level threads {threads}");
    }
}

#[test]
fn trace_netlist_n16_truth_table_sampled_lanes() {
    // The trace netlist marks the whole final-stage wire vector; check the
    // compiled batch agrees with the scalar trace on every pattern.
    let switch = ColumnsortSwitch::new(4, 4, 16);
    let elab = switch.staged().trace_logic(false);
    let inputs = BitMatrix::from_fn(16, 1 << 16, |row, v| v >> row & 1 == 1);
    let out = elab.compiled.eval_matrix(&inputs);
    for pattern in (0u64..(1 << 16)).step_by(157) {
        let valid: Vec<bool> = (0..16).map(|i| pattern >> i & 1 == 1).collect();
        let traced: Vec<bool> = switch
            .staged()
            .trace(&valid)
            .iter()
            .map(|&(v, _)| v)
            .collect();
        for (o, &bit) in traced.iter().enumerate() {
            assert_eq!(out.get(o, pattern as usize), bit, "pattern {pattern:#06x}");
        }
    }
}
