//! Property-based tests for the concentrator constructions.

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::spec::{check_concentration, ConcentratorSwitch};
use concentrator::{ColumnsortSwitch, FullColumnsortHyperconcentrator, Hyperconcentrator};
use proptest::prelude::*;

fn bits_from_seed(n: usize, seed: u64) -> Vec<bool> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        })
        .collect()
}

proptest! {
    /// The hyperconcentrator netlist equals the functional model for
    /// arbitrary sizes (not only powers of two).
    #[test]
    fn chip_netlist_equals_model(n in 1usize..24, seed in any::<u64>()) {
        let chip = Hyperconcentrator::new(n);
        let nl = chip.build_netlist(false);
        let valid = bits_from_seed(n, seed);
        prop_assert_eq!(nl.eval(&valid), chip.concentrate(&valid));
    }

    /// The chip's data-path netlist routes every message's data bit to the
    /// slot the routing assigned.
    #[test]
    fn chip_datapath_follows_routing(n in 2usize..16, seed in any::<u64>()) {
        let chip = Hyperconcentrator::new(n);
        let nl = chip.build_datapath_netlist(false);
        let valid = bits_from_seed(n, seed);
        let data: Vec<bool> = (0..n).map(|i| valid[i] && i % 3 == 0).collect();
        let mut inputs = valid.clone();
        inputs.extend(&data);
        let out = nl.eval(&inputs);
        let (_, dout) = out.split_at(n);
        let routing = chip.route(&valid);
        for (input, slot) in routing.assignment.iter().enumerate() {
            if let Some(out_idx) = slot {
                prop_assert_eq!(dout[*out_idx], data[input]);
            }
        }
    }

    /// Folding the switch netlist (which contains constants in the padded
    /// Columnsort stage) preserves the function and sheds gates.
    #[test]
    fn folded_full_columnsort_netlist_equivalent(seed in any::<u64>()) {
        let switch = FullColumnsortHyperconcentrator::new(8, 2);
        let nl = switch.staged().build_netlist(false);
        let folded = nl.fold_constants();
        prop_assert!(folded.area_report().gates < nl.area_report().gates,
            "padding constants must fold away some logic");
        let valid = bits_from_seed(16, seed);
        prop_assert_eq!(folded.eval(&valid), nl.eval(&valid));
    }

    /// Both Revsort layouts agree on every pattern.
    #[test]
    fn revsort_layouts_agree(seed in any::<u64>()) {
        let two = RevsortSwitch::new(64, 40, RevsortLayout::TwoDee);
        let three = RevsortSwitch::new(64, 40, RevsortLayout::ThreeDee);
        let valid = bits_from_seed(64, seed);
        prop_assert_eq!(two.route(&valid), three.route(&valid));
    }

    /// The guarantee holds across random m at n = 64 for both designs.
    #[test]
    fn guarantees_hold_for_random_m(m in 1usize..=64, seed in any::<u64>()) {
        let valid = bits_from_seed(64, seed);
        let revsort = RevsortSwitch::new(64, m, RevsortLayout::TwoDee);
        prop_assert!(check_concentration(&revsort, &valid).is_empty());
        let columnsort = ColumnsortSwitch::new(16, 4, m);
        prop_assert!(check_concentration(&columnsort, &valid).is_empty());
    }

    /// Capacity accounting: the exact integer override equals m − ε.
    #[test]
    fn capacity_is_exact(m in 1usize..=64) {
        let switch = ColumnsortSwitch::new(16, 4, m);
        prop_assert_eq!(
            switch.guaranteed_capacity(),
            m.saturating_sub(switch.epsilon_bound())
        );
        let revsort = RevsortSwitch::new(64, m, RevsortLayout::TwoDee);
        prop_assert_eq!(
            revsort.guaranteed_capacity(),
            m.saturating_sub(revsort.epsilon_bound())
        );
    }

    /// Output valid bits of the staged switches are monotone in the
    /// inputs (compaction networks are monotone circuits), hence delivery
    /// counts are monotone too.
    #[test]
    fn outputs_are_monotone(seed in any::<u64>(), flip in 0usize..64) {
        let switch = RevsortSwitch::new(64, 64, RevsortLayout::TwoDee);
        let mut valid = bits_from_seed(64, seed);
        valid[flip] = false;
        let before: Vec<bool> =
            switch.staged().trace(&valid).iter().map(|&(v, _)| v).collect();
        valid[flip] = true;
        let after: Vec<bool> =
            switch.staged().trace(&valid).iter().map(|&(v, _)| v).collect();
        for (b, a) in before.iter().zip(&after) {
            prop_assert!(!b || *a, "output fell when an input rose");
        }
    }

    /// Barrel shifter rotation composes: rotating by a then b equals
    /// rotating by a + b.
    #[test]
    fn barrel_rotation_composes(a in 0usize..16, b in 0usize..16, seed in any::<u64>()) {
        let barrel = concentrator::barrel::Barrel::new(16);
        let data = bits_from_seed(16, seed);
        let two_step = barrel.rotate(&barrel.rotate(&data, a), b);
        let one_step = barrel.rotate(&data, a + b);
        prop_assert_eq!(two_step, one_step);
    }
}
