//! Differential harness: the fault-compiled netlist path versus the
//! message-level [`FaultySwitch`] reference, bit for bit.
//!
//! The compiled path lowers chip faults onto the tapped datapath
//! elaboration ([`FaultableElab::compile_faulted`]) and runs 64 offered
//! patterns per SWAR sweep. The reference applies the same faults during
//! slot propagation ([`FaultySwitch::trace`]). For every output and every
//! lane the two must agree on:
//!
//! * the **valid** bit (including phantom carriers from `StuckValid` /
//!   `Inverted` chips), and
//! * the **marker** bit `valid ∧ data` when the data rail carries the
//!   valid pattern — 1 exactly when the slot holds a *real* message
//!   (phantoms and padding carry data 0 through the fault lowering).
//!
//! Coverage: every single-chip fault exhaustively over all 2^16 input
//! patterns at n = 16, then 256+ seeded random (switch, fault-set) pairs
//! across sizes and both constructions, then a proptest sweep.

use concentrator::faults::{ChipFault, FaultMode, FaultySwitch};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::verify::SplitMix64;
use concentrator::{ColumnsortSwitch, ConcentratorSwitch, StagedSwitch};
use proptest::prelude::*;

const MODES: [FaultMode; 3] = [
    FaultMode::StuckInvalid,
    FaultMode::StuckValid,
    FaultMode::Inverted,
];

/// Every (stage, chip) location in `switch`.
fn locations(switch: &StagedSwitch) -> Vec<(usize, usize)> {
    switch
        .stages
        .iter()
        .enumerate()
        .flat_map(|(s, stage)| (0..stage.chip_count).map(move |c| (s, c)))
        .collect()
}

/// Check the compiled fault path against the reference on one word of 64
/// lane patterns (`words[i]` bit `b` = lane `b`'s valid bit for input
/// `i`). Returns the number of (lane, output) points compared.
fn check_word(switch: &StagedSwitch, faults: &[ChipFault], words: &[u64]) -> usize {
    let compiled = switch.faultable_logic().compile_faulted(faults);
    let reference = FaultySwitch::new(switch, faults.to_vec());
    check_word_against(switch, &compiled, &reference, faults, words)
}

/// [`check_word`] with the overlay and reference hoisted, for callers
/// sweeping many pattern words against one fault set.
fn check_word_against(
    switch: &StagedSwitch,
    compiled: &netlist::CompiledNetlist,
    reference: &FaultySwitch<&StagedSwitch>,
    faults: &[ChipFault],
    words: &[u64],
) -> usize {
    let n = switch.n;
    let m = switch.m;
    assert_eq!(words.len(), n);
    // Marker trick: the data rail carries the valid pattern, so every
    // real message carries marker 1 and everything else carries 0.
    let mut inputs = vec![0u64; 2 * n];
    inputs[..n].copy_from_slice(words);
    inputs[n..].copy_from_slice(words);
    let out = compiled.eval_word(&inputs);

    let mut points = 0;
    for lane in 0..64 {
        let valid: Vec<bool> = (0..n).map(|i| (words[i] >> lane) & 1 == 1).collect();
        let wires = reference.trace(&valid);
        for (j, &pos) in switch.output_positions.iter().enumerate() {
            let (ref_valid, ref_source) = wires[pos];
            let net_valid = (out[j] >> lane) & 1 == 1;
            let net_marker = net_valid && (out[m + j] >> lane) & 1 == 1;
            assert_eq!(
                net_valid, ref_valid,
                "valid mismatch at output {j}, lane {lane}, faults {faults:?}"
            );
            assert_eq!(
                net_marker,
                ref_valid && ref_source.is_some(),
                "real-message marker mismatch at output {j}, lane {lane}, faults {faults:?}"
            );
            points += 1;
        }
    }
    points
}

/// Exhaustive differential check at n = 16: every single-chip fault in
/// every mode, against *all* 2^16 offered patterns (1024 words of 64
/// lanes each).
#[test]
fn exhaustive_single_faults_at_n16() {
    let switch = RevsortSwitch::new(16, 8, RevsortLayout::TwoDee);
    let staged = switch.staged();
    let mut points = 0usize;
    for (stage, chip) in locations(staged) {
        for mode in MODES {
            let fault = [ChipFault { stage, chip, mode }];
            let compiled = staged.faultable_logic().compile_faulted(&fault);
            let reference = FaultySwitch::new(staged, fault.to_vec());
            for chunk in 0..(1usize << 16) / 64 {
                let words: Vec<u64> = (0..16)
                    .map(|i| {
                        let mut w = 0u64;
                        for b in 0..64 {
                            if (chunk * 64 + b) >> i & 1 == 1 {
                                w |= 1 << b;
                            }
                        }
                        w
                    })
                    .collect();
                points += check_word_against(staged, &compiled, &reference, &fault, &words);
            }
        }
    }
    assert!(points > 0);
}

/// 256+ seeded random (switch, fault-set) pairs across sizes and both
/// constructions, multi-chip fault sets included.
#[test]
fn random_fault_sets_match_the_reference() {
    let revsort_16 = RevsortSwitch::new(16, 8, RevsortLayout::TwoDee);
    let revsort_64 = RevsortSwitch::new(64, 48, RevsortLayout::TwoDee);
    let revsort_3d = RevsortSwitch::new(64, 32, RevsortLayout::ThreeDee);
    let columnsort = ColumnsortSwitch::new(16, 4, 12);
    let switches: [&StagedSwitch; 4] = [
        revsort_16.staged(),
        revsort_64.staged(),
        revsort_3d.staged(),
        columnsort.staged(),
    ];
    let mut rng = SplitMix64(0x0D1F_F5E7);
    let mut pairs = 0usize;
    while pairs < 260 {
        let switch = switches[(rng.next_u64() % switches.len() as u64) as usize];
        let locs = locations(switch);
        let count = 1 + (rng.next_u64() % 4) as usize;
        let faults: Vec<ChipFault> = (0..count)
            .map(|_| {
                let (stage, chip) = locs[(rng.next_u64() % locs.len() as u64) as usize];
                ChipFault {
                    stage,
                    chip,
                    mode: MODES[(rng.next_u64() % 3) as usize],
                }
            })
            .collect();
        let words: Vec<u64> = (0..switch.n).map(|_| rng.next_u64()).collect();
        check_word(switch, &faults, &words);
        pairs += 1;
    }
}

proptest! {
    /// Random fault sets on the 64-input switch: compiled ≡ reference on
    /// 64 random lanes per case.
    #[test]
    fn proptest_fault_compiled_matches_reference(
        seed in any::<u64>(),
        picks in proptest::collection::vec((any::<u64>(), 0usize..3), 1..4),
    ) {
        let switch = RevsortSwitch::new(64, 48, RevsortLayout::TwoDee);
        let staged = switch.staged();
        let locs = locations(staged);
        let faults: Vec<ChipFault> = picks
            .iter()
            .map(|&(loc, mode)| {
                let (stage, chip) = locs[(loc % locs.len() as u64) as usize];
                ChipFault { stage, chip, mode: MODES[mode] }
            })
            .collect();
        let mut rng = SplitMix64(seed);
        let words: Vec<u64> = (0..64).map(|_| rng.next_u64()).collect();
        check_word(staged, &faults, &words);
    }

    /// Degradation monotonicity, per pattern: on a stage-0 fault set of
    /// silent chips, adding one more `StuckInvalid` fault never increases
    /// the delivered count (silencing a chip only removes messages, and
    /// the downstream compaction network is monotone).
    #[test]
    fn adding_a_silent_fault_never_helps(
        seed in any::<u64>(),
        base_chip in 0usize..8,
        extra_chip in 0usize..8,
    ) {
        let switch = RevsortSwitch::new(64, 48, RevsortLayout::TwoDee);
        let staged = switch.staged();
        let base = vec![ChipFault {
            stage: 0,
            chip: base_chip,
            mode: FaultMode::StuckInvalid,
        }];
        let mut extended = base.clone();
        extended.push(ChipFault {
            stage: 0,
            chip: extra_chip,
            mode: FaultMode::StuckInvalid,
        });
        let with_base = FaultySwitch::new(staged, base);
        let with_extra = FaultySwitch::new(staged, extended);
        let mut rng = SplitMix64(seed);
        for _ in 0..16 {
            let valid = rng.valid_bits(64, 0.6);
            prop_assert!(
                with_extra.route(&valid).routed() <= with_base.route(&valid).routed(),
                "adding a StuckInvalid fault increased delivery"
            );
        }
    }

    /// `StuckValid` is never better than `StuckInvalid` on the same
    /// stage-0 chip: both lose the chip's real messages, but the flooding
    /// mode additionally injects phantom carriers that steal output slots
    /// from the survivors.
    #[test]
    fn flooding_is_never_better_than_silence(
        seed in any::<u64>(),
        chip in 0usize..8,
    ) {
        let switch = RevsortSwitch::new(64, 48, RevsortLayout::TwoDee);
        let staged = switch.staged();
        let silent = FaultySwitch::new(
            staged,
            vec![ChipFault { stage: 0, chip, mode: FaultMode::StuckInvalid }],
        );
        let flooding = FaultySwitch::new(
            staged,
            vec![ChipFault { stage: 0, chip, mode: FaultMode::StuckValid }],
        );
        let mut rng = SplitMix64(seed);
        for _ in 0..16 {
            let valid = rng.valid_bits(64, 0.6);
            prop_assert!(
                flooding.route(&valid).routed() <= silent.route(&valid).routed(),
                "a flooding chip delivered more than a silent one"
            );
        }
    }
}
