//! Physical geometry primitives for the layout engine.
//!
//! The paper's packaging claims are geometric: chips are placed, crossbars
//! occupy wiring channels, boards stack with air gaps. This module gives
//! the layout engine ([`crate::layout`]) exact integer geometry so areas
//! and volumes come from *bounding boxes of placed parts* rather than
//! closed-form unit models — an independent check on
//! [`crate::packaging`]'s accounting.

use serde::{Deserialize, Serialize};

/// A point on the layout grid (lambda units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: i64,
    /// Vertical coordinate.
    pub y: i64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }
}

/// An axis-aligned rectangle, half-open (`max` exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner (exclusive).
    pub max: Point,
}

impl Rect {
    /// Construct from corner and size.
    ///
    /// # Panics
    /// If either dimension is non-positive.
    pub fn at(origin: Point, width: i64, height: i64) -> Self {
        assert!(
            width > 0 && height > 0,
            "rectangle dimensions must be positive"
        );
        Rect {
            min: origin,
            max: Point::new(origin.x + width, origin.y + height),
        }
    }

    /// Width (x extent).
    pub fn width(&self) -> i64 {
        self.max.x - self.min.x
    }

    /// Height (y extent).
    pub fn height(&self) -> i64 {
        self.max.y - self.min.y
    }

    /// Area.
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Whether two rectangles overlap (half-open semantics: touching
    /// edges do not overlap).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x < other.max.x
            && other.min.x < self.max.x
            && self.min.y < other.max.y
            && other.min.y < self.max.y
    }

    /// Whether `other` lies fully inside `self`.
    pub fn contains(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && other.max.x <= self.max.x
            && other.max.y <= self.max.y
    }

    /// Smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Bounding box of a non-empty rectangle collection.
    ///
    /// # Panics
    /// If `rects` is empty.
    pub fn bounding(rects: &[Rect]) -> Rect {
        let mut it = rects.iter();
        let first = *it.next().expect("bounding box of nothing");
        it.fold(first, |acc, r| acc.union(r))
    }
}

/// An axis-aligned box in 3-D (for stacks), half-open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Box3 {
    /// Footprint in the board plane.
    pub footprint: Rect,
    /// Stack axis interval `[z_min, z_max)`.
    pub z_min: i64,
    /// Exclusive top.
    pub z_max: i64,
}

impl Box3 {
    /// Construct from footprint and z interval.
    ///
    /// # Panics
    /// If the z interval is empty.
    pub fn new(footprint: Rect, z_min: i64, z_max: i64) -> Self {
        assert!(z_max > z_min, "z interval must be non-empty");
        Box3 {
            footprint,
            z_min,
            z_max,
        }
    }

    /// Volume.
    pub fn volume(&self) -> i64 {
        self.footprint.area() * (self.z_max - self.z_min)
    }

    /// 3-D overlap test.
    pub fn intersects(&self, other: &Box3) -> bool {
        self.footprint.intersects(&other.footprint)
            && self.z_min < other.z_max
            && other.z_min < self.z_max
    }

    /// Bounding box of a non-empty collection.
    ///
    /// # Panics
    /// If `boxes` is empty.
    pub fn bounding(boxes: &[Box3]) -> Box3 {
        let mut it = boxes.iter();
        let first = *it.next().expect("bounding box of nothing");
        it.fold(first, |acc, b| Box3 {
            footprint: acc.footprint.union(&b.footprint),
            z_min: acc.z_min.min(b.z_min),
            z_max: acc.z_max.max(b.z_max),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_dimensions_and_area() {
        let r = Rect::at(Point::new(2, 3), 4, 5);
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 5);
        assert_eq!(r.area(), 20);
        assert_eq!(r.max, Point::new(6, 8));
    }

    #[test]
    fn intersection_is_half_open() {
        let a = Rect::at(Point::new(0, 0), 2, 2);
        let touching = Rect::at(Point::new(2, 0), 2, 2);
        let overlapping = Rect::at(Point::new(1, 1), 2, 2);
        assert!(!a.intersects(&touching), "shared edge is not overlap");
        assert!(a.intersects(&overlapping));
        assert!(overlapping.intersects(&a));
    }

    #[test]
    fn union_and_bounding() {
        let a = Rect::at(Point::new(0, 0), 1, 1);
        let b = Rect::at(Point::new(5, 7), 1, 1);
        let u = a.union(&b);
        assert_eq!(u.width(), 6);
        assert_eq!(u.height(), 8);
        assert_eq!(Rect::bounding(&[a, b]), u);
        assert!(u.contains(&a) && u.contains(&b));
    }

    #[test]
    fn box3_volume_and_overlap() {
        let a = Box3::new(Rect::at(Point::new(0, 0), 2, 2), 0, 3);
        assert_eq!(a.volume(), 12);
        let stacked = Box3::new(Rect::at(Point::new(0, 0), 2, 2), 3, 4);
        assert!(!a.intersects(&stacked), "adjacent along z is not overlap");
        let inside = Box3::new(Rect::at(Point::new(1, 1), 1, 1), 2, 5);
        assert!(a.intersects(&inside));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn degenerate_rect_rejected() {
        Rect::at(Point::new(0, 0), 0, 5);
    }
}
