//! A clock-rate model on top of the gate-delay counts.
//!
//! The paper reports delays in gate counts because the technology's gate
//! delay is the free parameter ("a signal incurs 3 lg n + O(1) gate
//! delays"). This module closes the loop for system-level estimates: given
//! a technology gate delay, it derives the switch's minimum clock period
//! (bit-serial transfer is one bit per clock through the whole
//! combinational cascade), frame duration, and delivered bandwidth — the
//! quantities a machine architect would size the network with.

use serde::{Deserialize, Serialize};

/// A technology's timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Delay of one (wide) gate level, picoseconds. The paper's era: a few
    /// ns for ratioed nMOS; use ~1–3 ns.
    pub gate_delay_ps: u64,
    /// Fixed per-cycle margin (clock skew, latch setup), picoseconds.
    pub margin_ps: u64,
}

impl TimingModel {
    /// A representative 1987 nMOS process (2 ns gates, 4 ns margin).
    pub fn nmos_1987() -> Self {
        TimingModel {
            gate_delay_ps: 2_000,
            margin_ps: 4_000,
        }
    }

    /// A representative 1987 domino CMOS process — the paper's other
    /// target technology: faster gates (1 ns) but a precharge phase folded
    /// into the per-cycle margin (6 ns).
    pub fn domino_cmos_1987() -> Self {
        TimingModel {
            gate_delay_ps: 1_000,
            margin_ps: 6_000,
        }
    }

    /// Minimum clock period for a switch with the given combinational
    /// gate-delay count (one bit traverses the whole cascade per cycle).
    pub fn clock_period_ps(&self, gate_delays: u32) -> u64 {
        self.gate_delay_ps * u64::from(gate_delays) + self.margin_ps
    }

    /// Clock frequency in MHz for the given gate-delay count.
    pub fn clock_mhz(&self, gate_delays: u32) -> f64 {
        1e6 / self.clock_period_ps(gate_delays) as f64
    }

    /// Duration of one frame (setup cycle + `payload_bits` data cycles),
    /// picoseconds. `setup_cycles` is nonzero only for latched designs
    /// like the prefix+butterfly switch.
    pub fn frame_ps(&self, gate_delays: u32, setup_cycles: u32, payload_bits: usize) -> u64 {
        let period = self.clock_period_ps(gate_delays);
        period * (1 + u64::from(setup_cycles) + payload_bits as u64)
    }

    /// Delivered payload bandwidth in Gbit/s when `messages` of
    /// `payload_bits` each are delivered per frame.
    pub fn bandwidth_gbps(
        &self,
        gate_delays: u32,
        setup_cycles: u32,
        payload_bits: usize,
        messages: usize,
    ) -> f64 {
        let frame = self.frame_ps(gate_delays, setup_cycles, payload_bits) as f64;
        (messages * payload_bits) as f64 / frame * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revsort_switch::{RevsortLayout, RevsortSwitch};
    use crate::PrefixButterflyHyperconcentrator;

    #[test]
    fn period_scales_with_depth() {
        let t = TimingModel::nmos_1987();
        assert_eq!(t.clock_period_ps(10), 24_000);
        assert!(t.clock_mhz(10) > t.clock_mhz(20));
    }

    #[test]
    fn domino_beats_nmos_on_deep_switches_only() {
        // Domino's faster gates win once depth amortizes its precharge
        // margin; the crossover sits at margin difference / gate-delay
        // difference = 2 levels.
        let nmos = TimingModel::nmos_1987();
        let domino = TimingModel::domino_cmos_1987();
        assert!(domino.clock_period_ps(1) > nmos.clock_period_ps(1));
        assert!(domino.clock_period_ps(30) < nmos.clock_period_ps(30));
    }

    #[test]
    fn combinational_switch_frames_have_no_setup_cycles() {
        let t = TimingModel::nmos_1987();
        let switch = RevsortSwitch::new(256, 128, RevsortLayout::TwoDee);
        let frame = t.frame_ps(switch.delay(), 0, 64);
        // 1 setup + 64 payload cycles.
        assert_eq!(frame, t.clock_period_ps(switch.delay()) * 65);
    }

    #[test]
    fn latched_baseline_pays_setup_every_frame() {
        let t = TimingModel::nmos_1987();
        let pb = PrefixButterflyHyperconcentrator::new(256);
        let combinational = t.frame_ps(30, 0, 64);
        let latched = t.frame_ps(pb.levels() as u32, pb.setup_cycles(), 64);
        // For short payloads the setup dominates; the latched design's
        // frame must be longer per unit of logic depth.
        assert!(latched > t.frame_ps(pb.levels() as u32, 0, 64));
        let _ = combinational;
    }

    #[test]
    fn bandwidth_accounts_messages_and_bits() {
        let t = TimingModel::nmos_1987();
        let one = t.bandwidth_gbps(30, 0, 64, 1);
        let many = t.bandwidth_gbps(30, 0, 64, 50);
        assert!((many / one - 50.0).abs() < 1e-9);
        assert!(one > 0.0);
    }
}
