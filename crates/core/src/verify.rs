//! Mechanical verification of concentration guarantees: exhaustive checks
//! for small switches, seeded Monte Carlo plus structured adversarial
//! patterns for large ones, and empirical worst-case measurement of the
//! nearsortedness ε a switch actually achieves.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::spec::{check_concentration, ConcentratorSwitch};
use crate::staged::StagedSwitch;

/// Deterministic SplitMix64 — a tiny seeded generator so verification runs
/// are reproducible without threading an RNG type through the API.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A Bernoulli(`p`) draw.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// A valid-bit vector of length `n` with density `p`.
    pub fn valid_bits(&mut self, n: usize, p: f64) -> Vec<bool> {
        (0..n).map(|_| self.bernoulli(p)).collect()
    }
}

/// A failed check: the offending pattern and its violations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckFailure {
    /// The valid bits that broke the guarantee.
    pub pattern: Vec<bool>,
    /// Human-readable description of the violations.
    pub violations: Vec<String>,
}

/// Check every one of the `2^n` valid-bit patterns. Only call for small
/// `n` (≤ ~20). Parallelized with rayon.
pub fn exhaustive_check<S>(switch: &S) -> Result<(), CheckFailure>
where
    S: ConcentratorSwitch + Sync,
{
    let n = switch.inputs();
    assert!(n <= 24, "exhaustive check over 2^{n} patterns is infeasible");
    (0u64..(1u64 << n))
        .into_par_iter()
        .map(|pattern| {
            let valid: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            let violations = check_concentration(switch, &valid);
            if violations.is_empty() {
                Ok(())
            } else {
                Err(CheckFailure {
                    pattern: valid,
                    violations: violations.iter().map(|v| format!("{v:?}")).collect(),
                })
            }
        })
        .find_map_first(|r| r.err())
        .map_or(Ok(()), Err)
}

/// Structured adversarial valid-bit patterns — the layouts known to
/// maximize dirty regions in mesh nearsorters (checkerboards, bit-reversal
/// stripes, half-split blocks, single-column floods).
pub fn adversarial_patterns(n: usize) -> Vec<Vec<bool>> {
    let side = (n as f64).sqrt() as usize;
    let mut patterns: Vec<Vec<bool>> = Vec::new();
    // Checkerboard and inverse.
    if side * side == n {
        for phase in 0..2 {
            patterns
                .push((0..n).map(|x| (x / side + x % side) % 2 == phase).collect());
        }
        // Alternating full rows.
        patterns.push((0..n).map(|x| (x / side).is_multiple_of(2)).collect());
        // Alternating full columns.
        patterns.push((0..n).map(|x| (x % side).is_multiple_of(2)).collect());
        // One column all valid.
        patterns.push((0..n).map(|x| x % side == 0).collect());
        // Lower-left triangle.
        patterns.push((0..n).map(|x| x % side <= x / side).collect());
    }
    // Halves and quarters.
    patterns.push((0..n).map(|x| x < n / 2).collect());
    patterns.push((0..n).map(|x| x >= n / 2).collect());
    patterns.push((0..n).map(|x| x % 4 == 0).collect());
    // Everything / nothing.
    patterns.push(vec![true; n]);
    patterns.push(vec![false; n]);
    patterns
}

/// Result of a randomized verification campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonteCarloReport {
    /// Patterns tried.
    pub trials: usize,
    /// Failures found (empty = guarantee held everywhere tested).
    pub failures: Vec<CheckFailure>,
}

/// Run `trials` random patterns (density swept over a grid) plus the
/// structured adversarial patterns through the switch's guarantee checker.
pub fn monte_carlo_check<S>(switch: &S, trials: usize, seed: u64) -> MonteCarloReport
where
    S: ConcentratorSwitch + Sync,
{
    let n = switch.inputs();
    let densities = [0.05, 0.25, 0.5, 0.75, 0.95];
    let adversaries = adversarial_patterns(n);
    let mut failures: Vec<CheckFailure> = (0..trials)
        .into_par_iter()
        .filter_map(|t| {
            let mut rng = SplitMix64(seed ^ (t as u64).wrapping_mul(0xA24B_AED4_963E_E407));
            let p = densities[t % densities.len()];
            let valid = rng.valid_bits(n, p);
            let violations = check_concentration(switch, &valid);
            (!violations.is_empty()).then(|| CheckFailure {
                pattern: valid,
                violations: violations.iter().map(|v| format!("{v:?}")).collect(),
            })
        })
        .collect();
    let adversary_count = adversaries.len();
    for valid in adversaries {
        let violations = check_concentration(switch, &valid);
        if !violations.is_empty() {
            failures.push(CheckFailure {
                pattern: valid,
                violations: violations.iter().map(|v| format!("{v:?}")).collect(),
            });
        }
    }
    MonteCarloReport { trials: trials + adversary_count, failures }
}

/// Empirical nearsortedness of a staged switch: the worst ε observed over
/// random and adversarial patterns, to compare against the proven bound.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpsilonReport {
    /// Patterns measured.
    pub trials: usize,
    /// Largest ε observed.
    pub worst_epsilon: usize,
    /// Largest dirty-window length observed.
    pub worst_dirty: usize,
}

/// Measure the ε the switch's *full wire vector* achieves (before the
/// output truncation to `m` wires).
pub fn measure_epsilon(switch: &StagedSwitch, trials: usize, seed: u64) -> EpsilonReport {
    let n = switch.n;
    let densities = [0.1, 0.3, 0.5, 0.7, 0.9];
    let random = (0..trials).into_par_iter().map(|t| {
        let mut rng = SplitMix64(seed ^ (t as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25));
        let p = densities[t % densities.len()];
        rng.valid_bits(n, p)
    });
    let structured = adversarial_patterns(n).into_par_iter();
    let (worst_epsilon, worst_dirty) = random
        .chain(structured)
        .map(|valid| {
            let bits: Vec<bool> = switch.trace(&valid).iter().map(|&(v, _)| v).collect();
            let eps = meshsort::nearsort_epsilon(&bits, meshsort::SortOrder::Descending);
            let dirty = meshsort::clean_dirty_split(&bits).dirty_len;
            (eps, dirty)
        })
        .reduce(|| (0, 0), |a, b| (a.0.max(b.0), a.1.max(b.1)));
    EpsilonReport {
        trials: trials + adversarial_patterns(n).len(),
        worst_epsilon,
        worst_dirty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyper::Hyperconcentrator;
    use crate::revsort_switch::{RevsortLayout, RevsortSwitch};

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn exhaustive_check_passes_for_hyperconcentrator() {
        let h = Hyperconcentrator::new(12);
        assert!(exhaustive_check(&h).is_ok());
    }

    #[test]
    fn monte_carlo_passes_for_revsort_switch() {
        let switch = RevsortSwitch::new(64, 40, RevsortLayout::TwoDee);
        let report = monte_carlo_check(&switch, 500, 7);
        assert!(report.failures.is_empty(), "{:?}", report.failures.first());
    }

    #[test]
    fn measured_epsilon_within_proven_bound() {
        let switch = RevsortSwitch::new(64, 64, RevsortLayout::TwoDee);
        let report = measure_epsilon(switch.staged(), 500, 3);
        assert!(
            report.worst_epsilon <= switch.epsilon_bound(),
            "measured ε {} exceeds proven bound {}",
            report.worst_epsilon,
            switch.epsilon_bound()
        );
    }

    #[test]
    fn adversarial_patterns_cover_square_layouts() {
        let patterns = adversarial_patterns(16);
        assert!(patterns.len() >= 10);
        assert!(patterns.iter().all(|p| p.len() == 16));
    }
}
