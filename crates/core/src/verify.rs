//! Mechanical verification of concentration guarantees: exhaustive checks
//! for small switches, seeded Monte Carlo plus structured adversarial
//! patterns for large ones, and empirical worst-case measurement of the
//! nearsortedness ε a switch actually achieves.
//!
//! Two evaluation paths exist. The generic functions ([`exhaustive_check`],
//! [`monte_carlo_check`]) route every pattern through
//! [`ConcentratorSwitch::route`] — the message-level functional model. The
//! `_compiled` variants instead push 64 patterns per machine word through
//! the switch's cached compiled datapath netlist
//! ([`StagedSwitch::datapath_logic`]) and screen the results with
//! bit-sliced lane counters; only screened-out suspects ever reach the
//! per-pattern `route()` path (solely to produce a rich failure report), so
//! the hot path is pure batch evaluation.

use netlist::BitMatrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::spec::{check_concentration, ConcentratorKind, ConcentratorSwitch};
use crate::staged::StagedSwitch;

/// Patterns per screening chunk: bounds peak matrix memory while keeping
/// whole words busy.
const SCREEN_CHUNK: usize = 2048;

/// Deterministic SplitMix64 — a tiny seeded generator so verification runs
/// are reproducible without threading an RNG type through the API.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A Bernoulli(`p`) draw.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// A valid-bit vector of length `n` with density `p`.
    pub fn valid_bits(&mut self, n: usize, p: f64) -> Vec<bool> {
        (0..n).map(|_| self.bernoulli(p)).collect()
    }
}

/// A failed check: the offending pattern and its violations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckFailure {
    /// The valid bits that broke the guarantee.
    pub pattern: Vec<bool>,
    /// Human-readable description of the violations.
    pub violations: Vec<String>,
}

/// Check every one of the `2^n` valid-bit patterns. Only call for small
/// `n` (≤ ~20). Parallelized with rayon.
pub fn exhaustive_check<S>(switch: &S) -> Result<(), CheckFailure>
where
    S: ConcentratorSwitch + Sync,
{
    let n = switch.inputs();
    assert!(
        n <= 24,
        "exhaustive check over 2^{n} patterns is infeasible"
    );
    (0u64..(1u64 << n))
        .into_par_iter()
        .map(|pattern| {
            let valid: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            let violations = check_concentration(switch, &valid);
            if violations.is_empty() {
                Ok(())
            } else {
                Err(CheckFailure {
                    pattern: valid,
                    violations: violations.iter().map(|v| format!("{v:?}")).collect(),
                })
            }
        })
        .find_map_first(|r| r.err())
        .map_or(Ok(()), Err)
}

/// Structured adversarial valid-bit patterns — the layouts known to
/// maximize dirty regions in mesh nearsorters (checkerboards, bit-reversal
/// stripes, half-split blocks, single-column floods).
pub fn adversarial_patterns(n: usize) -> Vec<Vec<bool>> {
    let side = (n as f64).sqrt() as usize;
    let mut patterns: Vec<Vec<bool>> = Vec::new();
    // Checkerboard and inverse.
    if side * side == n {
        for phase in 0..2 {
            patterns.push((0..n).map(|x| (x / side + x % side) % 2 == phase).collect());
        }
        // Alternating full rows.
        patterns.push((0..n).map(|x| (x / side).is_multiple_of(2)).collect());
        // Alternating full columns.
        patterns.push((0..n).map(|x| (x % side).is_multiple_of(2)).collect());
        // One column all valid.
        patterns.push((0..n).map(|x| x % side == 0).collect());
        // Lower-left triangle.
        patterns.push((0..n).map(|x| x % side <= x / side).collect());
    }
    // Halves and quarters.
    patterns.push((0..n).map(|x| x < n / 2).collect());
    patterns.push((0..n).map(|x| x >= n / 2).collect());
    patterns.push((0..n).map(|x| x % 4 == 0).collect());
    // Everything / nothing.
    patterns.push(vec![true; n]);
    patterns.push(vec![false; n]);
    patterns
}

/// Result of a randomized verification campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonteCarloReport {
    /// Patterns tried.
    pub trials: usize,
    /// Failures found (empty = guarantee held everywhere tested).
    pub failures: Vec<CheckFailure>,
}

/// Run `trials` random patterns (density swept over a grid) plus the
/// structured adversarial patterns through the switch's guarantee checker.
pub fn monte_carlo_check<S>(switch: &S, trials: usize, seed: u64) -> MonteCarloReport
where
    S: ConcentratorSwitch + Sync,
{
    let n = switch.inputs();
    let densities = [0.05, 0.25, 0.5, 0.75, 0.95];
    let adversaries = adversarial_patterns(n);
    let mut failures: Vec<CheckFailure> = (0..trials)
        .into_par_iter()
        .filter_map(|t| {
            let mut rng = SplitMix64(seed ^ (t as u64).wrapping_mul(0xA24B_AED4_963E_E407));
            let p = densities[t % densities.len()];
            let valid = rng.valid_bits(n, p);
            let violations = check_concentration(switch, &valid);
            (!violations.is_empty()).then(|| CheckFailure {
                pattern: valid,
                violations: violations.iter().map(|v| format!("{v:?}")).collect(),
            })
        })
        .collect();
    let adversary_count = adversaries.len();
    for valid in adversaries {
        let violations = check_concentration(switch, &valid);
        if !violations.is_empty() {
            failures.push(CheckFailure {
                pattern: valid,
                violations: violations.iter().map(|v| format!("{v:?}")).collect(),
            });
        }
    }
    MonteCarloReport {
        trials: trials + adversary_count,
        failures,
    }
}

/// Bit-sliced vertical counter over 64 lanes: adding `j` one-bit words
/// leaves each lane's count readable across the planes. Turns "popcount of
/// one column per pattern" into a handful of word operations shared by all
/// 64 patterns of a word.
#[derive(Default)]
struct LaneCounts {
    planes: Vec<u64>,
}

impl LaneCounts {
    /// Add a one-bit addend to all 64 lanes (ripple-carry across planes).
    fn add(&mut self, word: u64) {
        let mut carry = word;
        for plane in &mut self.planes {
            let sum = *plane ^ carry;
            carry &= *plane;
            *plane = sum;
            if carry == 0 {
                return;
            }
        }
        if carry != 0 {
            self.planes.push(carry);
        }
    }

    /// The accumulated count in one lane.
    fn get(&self, lane: usize) -> usize {
        self.planes
            .iter()
            .enumerate()
            .map(|(i, p)| (((p >> lane) & 1) as usize) << i)
            .sum()
    }
}

/// Screen a block of valid-bit patterns (one per [`BitMatrix`] column)
/// against `switch`'s guarantee using one compiled datapath sweep. Returns
/// the column indices that *may* violate the guarantee; every column not
/// returned is proven clean.
///
/// The valid bits are fed on both the valid and the data rails, so an
/// output carries a *real* (non-padding) message exactly when its valid
/// and data bits are both set — padding constants carry data 0, and a
/// staged switch cannot route an invalid input by construction, so
/// phantom-message checks need no per-pattern work.
fn staged_screen(switch: &StagedSwitch, patterns: &BitMatrix) -> Vec<usize> {
    let n = switch.n;
    let m = switch.m;
    assert_eq!(patterns.rows(), n, "one row per switch input");
    let cap = switch.guaranteed_capacity();
    let hyper = matches!(switch.kind, ConcentratorKind::Hyperconcentrator);
    let elab = switch.datapath_logic(false);

    let vectors = patterns.vectors();
    let mut fed = BitMatrix::zeroed(2 * n, vectors);
    for r in 0..n {
        for w in 0..patterns.words_per_row() {
            let word = patterns.word(r, w);
            *fed.word_mut(r, w) = word;
            *fed.word_mut(n + r, w) = word;
        }
    }
    let out = elab.compiled.eval_matrix(&fed);

    let mut suspects = Vec::new();
    for w in 0..patterns.words_per_row() {
        let mut offered = LaneCounts::default();
        for r in 0..n {
            offered.add(patterns.word(r, w));
        }
        let mut routed = LaneCounts::default();
        // A hyperconcentrator's delivered set must be a prefix: flag any
        // lane where a silent output is followed by a carrying one.
        let mut prefix_break = 0u64;
        let mut prev_real = !0u64;
        for o in 0..m {
            let real = out.word(o, w) & out.word(m + o, w);
            routed.add(real);
            prefix_break |= !prev_real & real;
            prev_real = real;
        }
        let base = w * netlist::WORD_BITS;
        let lanes = netlist::WORD_BITS.min(vectors - base);
        for lane in 0..lanes {
            let k = offered.get(lane);
            let delivered = routed.get(lane);
            let mut bad = delivered < k.min(cap);
            if hyper {
                bad |= (prefix_break >> lane) & 1 == 1 || delivered != k.min(m);
            }
            if bad {
                suspects.push(base + lane);
            }
        }
    }
    suspects
}

/// Pack boolean patterns (one per column) into a [`BitMatrix`].
fn pack_columns(n: usize, patterns: &[Vec<bool>]) -> BitMatrix {
    let mut m = BitMatrix::zeroed(n, patterns.len());
    for (v, pattern) in patterns.iter().enumerate() {
        assert_eq!(pattern.len(), n, "pattern length mismatch");
        for (r, &bit) in pattern.iter().enumerate() {
            if bit {
                m.set(r, v, true);
            }
        }
    }
    m
}

/// [`exhaustive_check`] over the compiled batch engine: all `2^n` patterns
/// stream through the cached compiled datapath netlist, 64 per word;
/// `route()` runs only on screened suspects to reconstruct the violation
/// report.
pub fn exhaustive_check_compiled(switch: &StagedSwitch) -> Result<(), CheckFailure> {
    let n = switch.n;
    assert!(
        n <= 24,
        "exhaustive check over 2^{n} patterns is infeasible"
    );
    let total = 1u64 << n;
    let mut base = 0u64;
    while base < total {
        let count = (SCREEN_CHUNK as u64).min(total - base) as usize;
        let block = BitMatrix::from_fn(n, count, |row, v| (base + v as u64) >> row & 1 == 1);
        for suspect in staged_screen(switch, &block) {
            let valid = block.column(suspect);
            let violations = check_concentration(switch, &valid);
            if !violations.is_empty() {
                return Err(CheckFailure {
                    pattern: valid,
                    violations: violations.iter().map(|v| format!("{v:?}")).collect(),
                });
            }
        }
        base += count as u64;
    }
    Ok(())
}

/// [`monte_carlo_check`] over the compiled batch engine. Pattern generation
/// is identical (same seeds, densities, and adversarial suite), so reports
/// are comparable; only the evaluation strategy differs.
pub fn monte_carlo_check_compiled(
    switch: &StagedSwitch,
    trials: usize,
    seed: u64,
) -> MonteCarloReport {
    let n = switch.n;
    let densities = [0.05, 0.25, 0.5, 0.75, 0.95];
    let adversaries = adversarial_patterns(n);
    let total = trials + adversaries.len();
    let mut failures = Vec::new();
    let mut base = 0usize;
    while base < total {
        let count = SCREEN_CHUNK.min(total - base);
        let patterns: Vec<Vec<bool>> = (base..base + count)
            .map(|t| {
                if t < trials {
                    let mut rng = SplitMix64(seed ^ (t as u64).wrapping_mul(0xA24B_AED4_963E_E407));
                    rng.valid_bits(n, densities[t % densities.len()])
                } else {
                    adversaries[t - trials].clone()
                }
            })
            .collect();
        let block = pack_columns(n, &patterns);
        for suspect in staged_screen(switch, &block) {
            let valid = patterns[suspect].clone();
            let violations = check_concentration(switch, &valid);
            if !violations.is_empty() {
                failures.push(CheckFailure {
                    pattern: valid,
                    violations: violations.iter().map(|v| format!("{v:?}")).collect(),
                });
            }
        }
        base += count;
    }
    MonteCarloReport {
        trials: total,
        failures,
    }
}

/// Empirical nearsortedness of a staged switch: the worst ε observed over
/// random and adversarial patterns, to compare against the proven bound.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpsilonReport {
    /// Patterns measured.
    pub trials: usize,
    /// Largest ε observed.
    pub worst_epsilon: usize,
    /// Largest dirty-window length observed.
    pub worst_dirty: usize,
}

/// Measure the ε the switch's *full wire vector* achieves (before the
/// output truncation to `m` wires).
///
/// Patterns are evaluated 64 at a time through the cached compiled
/// full-trace netlist ([`StagedSwitch::trace_logic`]) rather than through
/// the message-level [`StagedSwitch::trace`]; the two agree gate-for-gate
/// (see the staged tests), so reports are unchanged.
pub fn measure_epsilon(switch: &StagedSwitch, trials: usize, seed: u64) -> EpsilonReport {
    let n = switch.n;
    let densities = [0.1, 0.3, 0.5, 0.7, 0.9];
    let elab = switch.trace_logic(false);
    let adversaries = adversarial_patterns(n);
    let total = trials + adversaries.len();
    let (mut worst_epsilon, mut worst_dirty) = (0usize, 0usize);
    let mut base = 0usize;
    while base < total {
        let count = SCREEN_CHUNK.min(total - base);
        let patterns: Vec<Vec<bool>> = (base..base + count)
            .map(|t| {
                if t < trials {
                    let mut rng = SplitMix64(seed ^ (t as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25));
                    rng.valid_bits(n, densities[t % densities.len()])
                } else {
                    adversaries[t - trials].clone()
                }
            })
            .collect();
        let block = pack_columns(n, &patterns);
        let out = elab.compiled.eval_matrix(&block);
        for v in 0..count {
            let bits = out.column(v);
            let eps = meshsort::nearsort_epsilon(&bits, meshsort::SortOrder::Descending);
            let dirty = meshsort::clean_dirty_split(&bits).dirty_len;
            worst_epsilon = worst_epsilon.max(eps);
            worst_dirty = worst_dirty.max(dirty);
        }
        base += count;
    }
    EpsilonReport {
        trials: total,
        worst_epsilon,
        worst_dirty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyper::Hyperconcentrator;
    use crate::revsort_switch::{RevsortLayout, RevsortSwitch};

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn exhaustive_check_passes_for_hyperconcentrator() {
        let h = Hyperconcentrator::new(12);
        assert!(exhaustive_check(&h).is_ok());
    }

    #[test]
    fn monte_carlo_passes_for_revsort_switch() {
        let switch = RevsortSwitch::new(64, 40, RevsortLayout::TwoDee);
        let report = monte_carlo_check(&switch, 500, 7);
        assert!(report.failures.is_empty(), "{:?}", report.failures.first());
    }

    #[test]
    fn measured_epsilon_within_proven_bound() {
        let switch = RevsortSwitch::new(64, 64, RevsortLayout::TwoDee);
        let report = measure_epsilon(switch.staged(), 500, 3);
        assert!(
            report.worst_epsilon <= switch.epsilon_bound(),
            "measured ε {} exceeds proven bound {}",
            report.worst_epsilon,
            switch.epsilon_bound()
        );
    }

    #[test]
    fn adversarial_patterns_cover_square_layouts() {
        let patterns = adversarial_patterns(16);
        assert!(patterns.len() >= 10);
        assert!(patterns.iter().all(|p| p.len() == 16));
    }

    #[test]
    fn compiled_monte_carlo_matches_routed_monte_carlo() {
        let switch = RevsortSwitch::new(64, 40, RevsortLayout::TwoDee);
        let legacy = monte_carlo_check(&switch, 300, 7);
        let compiled = monte_carlo_check_compiled(switch.staged(), 300, 7);
        assert_eq!(compiled.trials, legacy.trials);
        assert_eq!(compiled.failures.len(), legacy.failures.len());
        assert!(
            compiled.failures.is_empty(),
            "{:?}",
            compiled.failures.first()
        );
    }

    #[test]
    fn compiled_exhaustive_matches_routed_exhaustive_on_small_switch() {
        use crate::columnsort_switch::ColumnsortSwitch;
        let switch = ColumnsortSwitch::new(4, 4, 12);
        assert!(exhaustive_check(switch.staged()).is_ok());
        assert!(exhaustive_check_compiled(switch.staged()).is_ok());
    }

    #[test]
    fn compiled_exhaustive_covers_hyperconcentrator_prefix_property() {
        // Full-Columnsort staged switches make the Hyperconcentrator
        // guarantee and contain ±∞ padding constants — the case the
        // valid∧data real-message mask exists for.
        use crate::full_columnsort::FullColumnsortHyperconcentrator;
        let switch = FullColumnsortHyperconcentrator::new(4, 2);
        assert!(exhaustive_check_compiled(switch.staged()).is_ok());
    }

    #[test]
    fn compiled_screen_catches_broken_switches() {
        use crate::staged::{sort_stage, Axis};
        // A 4-to-2 switch reading its outputs off the *highest* pins: the
        // compactor pushes messages to low pins, so any single message is
        // dropped under capacity.
        let stage = sort_stage(4, 1, Axis::Columns, None, None, "col");
        let broken = StagedSwitch::new(
            "broken read-off",
            4,
            2,
            crate::spec::ConcentratorKind::Partial { alpha: 1.0 },
            vec![stage],
            vec![2, 3],
        );
        let report = monte_carlo_check_compiled(&broken, 100, 11);
        assert!(
            !report.failures.is_empty(),
            "screen must flag dropped messages"
        );
        let legacy = monte_carlo_check(&broken, 100, 11);
        assert_eq!(report.failures.len(), legacy.failures.len());
        assert!(exhaustive_check_compiled(&broken).is_err());
    }
}
