//! Time as a seam: a `Clock` trait with wall-clock and virtual
//! implementations.
//!
//! Everything above this crate that needs "now" — fault-campaign
//! sampling, the fabric's serving loops, the deterministic simulation
//! harness — reads it through [`Clock`] instead of `std::time` directly.
//! Production code holds a [`WallClock`]; the simulation harness holds a
//! [`VirtualClock`] it advances one tick per scheduled step, which makes
//! every time-dependent decision a pure function of the schedule (and
//! therefore of the scheduler's seed).
//!
//! Ticks are dimensionless `u64`s. The wall clock maps them to elapsed
//! microseconds; the virtual clock maps them to scheduler steps. Code
//! that samples a clock must not assume a unit — only monotonicity.

use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic tick source.
pub trait Clock: Send + Sync + Debug {
    /// The current tick. Must be monotonically non-decreasing.
    fn now(&self) -> u64;
}

/// The production clock: ticks are microseconds since construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose tick 0 is now.
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// The simulation clock: an explicit counter advanced by whoever owns the
/// schedule. Shared freely (`Arc<VirtualClock>`); reads and advances are
/// atomic.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at tick 0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// A virtual clock starting at `tick`.
    pub fn at(tick: u64) -> VirtualClock {
        VirtualClock {
            ticks: AtomicU64::new(tick),
        }
    }

    /// Advance by `ticks`, returning the new now.
    pub fn advance(&self, ticks: u64) -> u64 {
        self.ticks.fetch_add(ticks, Ordering::AcqRel) + ticks
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> u64 {
        self.ticks.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_exactly() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.advance(3), 3);
        assert_eq!(clock.now(), 3);
        assert_eq!(VirtualClock::at(10).now(), 10);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = WallClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn clocks_are_object_safe() {
        let clocks: Vec<Box<dyn Clock>> =
            vec![Box::new(WallClock::new()), Box::new(VirtualClock::at(7))];
        assert_eq!(clocks[1].now(), 7);
    }
}
