//! The full-Columnsort multichip *hyper*concentrator of §6.
//!
//! "By simulating all eight steps of Columnsort, we can build a
//! hyperconcentrator switch with the same asymptotic volume and chip count
//! as the partial concentrator switch of Section 5. A signal passes
//! through four chips and incurs 8β lg n + O(1) gate delays."
//!
//! The four chip stages are the four column sorts (steps 1, 3, 5, 7); the
//! even steps are wiring. Step 7 sorts an r×(s+1) mesh whose padding
//! half-columns are hardwired constants (valid-1 at the head — "−∞" for
//! the descending valid-bit order — and invalid-0 at the tail); step 8's
//! unshift drops them again.

use meshsort::{cm_to_rm_permutation, rm_to_cm_permutation, ColumnsortShape};
use serde::{Deserialize, Serialize};

use crate::spec::{ConcentratorKind, ConcentratorSwitch, Routing};
use crate::staged::{sort_stage, Axis, PinSource, StageKind, StagedSwitch, SwitchStage};

/// An n-by-n multichip hyperconcentrator built from all eight Columnsort
/// steps on an r×s mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullColumnsortHyperconcentrator {
    inner: StagedSwitch,
    shape: ColumnsortShape,
}

impl FullColumnsortHyperconcentrator {
    /// Build the hyperconcentrator over an r×s mesh.
    ///
    /// # Panics
    /// Unless `s | r` and `r ≥ 2(s−1)²` (Columnsort's full-sort
    /// conditions).
    pub fn new(rows: usize, cols: usize) -> Self {
        let shape = ColumnsortShape::new(rows, cols);
        assert!(
            shape.supports_full_sort(),
            "full Columnsort requires r >= 2(s-1)^2; got r={rows}, s={cols}"
        );
        let n = shape.len();

        let cm_rm = cm_to_rm_permutation(rows, cols);
        let rm_cm = rm_to_cm_permutation(rows, cols);
        let stages = vec![
            sort_stage(
                rows,
                cols,
                Axis::Columns,
                None,
                None,
                "step 1: sort columns",
            ),
            sort_stage(
                rows,
                cols,
                Axis::Columns,
                Some(&cm_rm),
                None,
                "steps 2-3: CM->RM wiring, sort columns",
            ),
            sort_stage(
                rows,
                cols,
                Axis::Columns,
                Some(&rm_cm),
                None,
                "steps 4-5: RM->CM wiring, sort columns",
            ),
            shifted_sort_stage(rows, cols),
        ];

        let inner = StagedSwitch::new(
            format!("full-Columnsort hyperconcentrator (r={rows}, s={cols})"),
            n,
            n,
            ConcentratorKind::Hyperconcentrator,
            stages,
            // The fully sorted order is column-major: output x lives at
            // matrix position (x mod r, ⌊x/r⌋).
            (0..n).map(|x| (x % rows) * cols + x / rows).collect(),
        );
        FullColumnsortHyperconcentrator { inner, shape }
    }

    /// The underlying mesh shape.
    pub fn shape(&self) -> ColumnsortShape {
        self.shape
    }

    /// The underlying staged switch.
    pub fn staged(&self) -> &StagedSwitch {
        &self.inner
    }

    /// Chips a message passes through — four, as §6 states.
    pub fn chip_traversals(&self) -> usize {
        self.inner.stages.len()
    }

    /// Total gate delays: `4 × (2⌈lg r⌉ + pads) = 8β lg n + O(1)`.
    pub fn delay(&self) -> u32 {
        self.inner.delay()
    }
}

impl ConcentratorSwitch for FullColumnsortHyperconcentrator {
    fn inputs(&self) -> usize {
        self.inner.n
    }

    fn outputs(&self) -> usize {
        self.inner.m
    }

    fn kind(&self) -> ConcentratorKind {
        ConcentratorKind::Hyperconcentrator
    }

    fn route(&self, valid: &[bool]) -> Routing {
        self.inner.route(valid)
    }
}

/// Steps 6–8: the shift stage. The column-major element sequence is shifted
/// down by `⌊r/2⌋` across `s+1` chips; the head pads are hardwired valid
/// (sorting first in the descending order) and the tail pads hardwired
/// invalid. After the column sorts, the pad positions are dropped and the
/// sequence scattered back to row-major matrix order.
fn shifted_sort_stage(rows: usize, cols: usize) -> SwitchStage {
    let n = rows * cols;
    let half = rows / 2;
    let chip_count = cols + 1;
    let total = chip_count * rows;
    debug_assert_eq!(total, n + rows);

    let mut input_map = Vec::with_capacity(total);
    let mut output_map = Vec::with_capacity(total);
    for t in 0..total {
        if t < half {
            input_map.push(PinSource::Const(true));
            output_map.push(None);
        } else if t < half + n {
            let cm = t - half;
            let (row, col) = (cm % rows, cm / rows);
            input_map.push(PinSource::Prev(row * cols + col));
            output_map.push(Some(row * cols + col));
        } else {
            input_map.push(PinSource::Const(false));
            output_map.push(None);
        }
    }
    SwitchStage {
        label: "steps 6-8: shift, sort columns, unshift".into(),
        kind: StageKind::Compactor,
        chip_count,
        chip_pins: rows,
        input_map,
        output_map,
        out_len: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_concentration;
    use meshsort::{columnsort_full, Grid, SortOrder};

    fn bits_of(pattern: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (pattern >> i) & 1 == 1).collect()
    }

    #[test]
    fn compacts_all_patterns_exhaustively_8x2() {
        let switch = FullColumnsortHyperconcentrator::new(8, 2);
        for pattern in 0u64..(1 << 16) {
            let valid = bits_of(pattern, 16);
            let violations = check_concentration(&switch, &valid);
            assert!(
                violations.is_empty(),
                "pattern {pattern:#x}: {violations:?}"
            );
        }
    }

    #[test]
    fn matches_meshsort_full_columnsort_9x3() {
        let switch = FullColumnsortHyperconcentrator::new(9, 3);
        let mut state = 11u64;
        for _ in 0..5000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let valid = bits_of(state & ((1 << 27) - 1), 27);
            let traced: Vec<bool> = switch
                .staged()
                .trace(&valid)
                .iter()
                .map(|&(v, _)| v)
                .collect();
            let mut grid = Grid::from_row_major(9, 3, valid.clone());
            columnsort_full(&mut grid, SortOrder::Descending);
            assert_eq!(&traced, grid.as_row_major(), "state {state:#x}");
        }
    }

    #[test]
    fn compacts_random_patterns_16x4() {
        let switch = FullColumnsortHyperconcentrator::new(32, 4);
        let mut state = 3u64;
        for _ in 0..1000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let valid: Vec<bool> = (0..128)
                .map(|i| (state.rotate_left((i % 61) as u32)) & 1 == 1)
                .collect();
            let violations = check_concentration(&switch, &valid);
            assert!(violations.is_empty(), "{state:#x}: {violations:?}");
        }
    }

    #[test]
    fn four_chip_traversals_and_delay() {
        let switch = FullColumnsortHyperconcentrator::new(32, 4);
        assert_eq!(switch.chip_traversals(), 4);
        // 4 × (2·5 + 2) = 48.
        assert_eq!(switch.delay(), 48);
    }

    #[test]
    fn netlist_matches_trace_8x2() {
        let switch = FullColumnsortHyperconcentrator::new(8, 2);
        let nl = switch.staged().build_netlist(false);
        for pattern in (0u64..(1 << 16)).step_by(431) {
            let valid = bits_of(pattern, 16);
            let expected: Vec<bool> = {
                let t = switch.staged().trace(&valid);
                switch
                    .staged()
                    .output_positions
                    .iter()
                    .map(|&p| t[p].0)
                    .collect()
            };
            assert_eq!(nl.eval(&valid), expected, "pattern {pattern:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "r >= 2(s-1)^2")]
    fn rejects_shapes_too_flat_to_sort() {
        FullColumnsortHyperconcentrator::new(8, 4);
    }
}
