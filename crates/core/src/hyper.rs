//! The single-chip n-by-n hyperconcentrator (Cormen–Leiserson 1986), the
//! building block every multichip switch in the paper is made of.
//!
//! Functionally it is a *stable compactor*: the `k` valid inputs are routed,
//! in input order, to outputs `0..k`. The gate-level realization here is a
//! recursive two-block merge. At each doubling, the left block `L` (already
//! compacted) doubles as a **unary encoding of its own valid count** `l`,
//! so the right block can be shifted down by `l` positions with a single
//! AND–OR plane pair:
//!
//! ```text
//! out_i = L_i  ∨  ⋁_j (eⱼ ∧ R_{i−j})        eⱼ = "l = j" = L_{j−1} ∧ ¬L_j
//! ```
//!
//! Each `eⱼ ∧ R_{i−j}` is a single wide-fan-in AND (complements are free in
//! the dual-rail model), so a merge costs exactly **two gate levels**, and
//! the full chip costs `2⌈lg n⌉` — precisely the delay the paper quotes for
//! the 1986 design — with `Θ(n²)` gates.

use netlist::{Literal, Netlist};
use serde::{Deserialize, Serialize};

use crate::spec::{ConcentratorKind, ConcentratorSwitch, Routing};

/// An n-by-n hyperconcentrator chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hyperconcentrator {
    n: usize,
}

impl Hyperconcentrator {
    /// Create an n-by-n hyperconcentrator.
    ///
    /// # Panics
    /// If `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "hyperconcentrator needs at least one wire");
        Hyperconcentrator { n }
    }

    /// Port count `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Compact a valid-bit vector: `k` ones followed by `n−k` zeros.
    pub fn concentrate(&self, valid: &[bool]) -> Vec<bool> {
        assert_eq!(valid.len(), self.n);
        let k = valid.iter().filter(|&&v| v).count();
        (0..self.n).map(|i| i < k).collect()
    }

    /// Gate delays through the bare merge network: `2⌈lg n⌉`.
    pub fn logic_delay(&self) -> u32 {
        2 * ceil_lg(self.n)
    }

    /// Gate delays through the packaged chip: logic plus one input and one
    /// output pad level — the `O(1)` term of the paper's per-chip delay.
    pub fn chip_delay(&self) -> u32 {
        self.logic_delay() + PAD_LEVELS
    }

    /// Build the control netlist: `n` valid-bit inputs, `n` compacted
    /// valid-bit outputs.
    ///
    /// `with_pads` adds one [`netlist::GateKind::Buf`] level at each of the
    /// input and output pad rings, so the measured depth equals
    /// [`Hyperconcentrator::chip_delay`]; without pads it equals
    /// [`Hyperconcentrator::logic_delay`].
    pub fn build_netlist(&self, with_pads: bool) -> Netlist {
        let mut nl = Netlist::new();
        let raw = nl.inputs_n(self.n);
        let mut lits: Vec<Literal> = raw.into_iter().map(Literal::pos).collect();
        if with_pads {
            lits = lits.into_iter().map(|l| nl.buf(l)).collect();
        }
        let mut outs = compact_block(&mut nl, &lits);
        if with_pads {
            outs = outs.into_iter().map(|l| nl.buf(l)).collect();
        }
        for out in outs {
            nl.mark_output(out);
        }
        nl
    }

    /// Build the data-path netlist for one bit-serial time slice: inputs
    /// are `n` valid bits followed by `n` data bits; outputs are `n`
    /// compacted valid bits followed by the `n` data bits carried along the
    /// established paths. Vacant outputs are don't-cares (they carry 0 when
    /// invalid inputs drive 0, as the simulator does).
    ///
    /// In hardware the selectors are latched at setup and the data bits of
    /// later cycles flow through the frozen paths; holding the valid bits
    /// constant over the frame makes this single combinational network
    /// cycle-for-cycle equivalent.
    pub fn build_datapath_netlist(&self, with_pads: bool) -> Netlist {
        let mut nl = Netlist::new();
        let valid_raw = nl.inputs_n(self.n);
        let data_raw = nl.inputs_n(self.n);
        let mut valid: Vec<Literal> = valid_raw.into_iter().map(Literal::pos).collect();
        let mut data: Vec<Literal> = data_raw.into_iter().map(Literal::pos).collect();
        if with_pads {
            valid = valid.into_iter().map(|l| nl.buf(l)).collect();
            data = data.into_iter().map(|l| nl.buf(l)).collect();
        }
        let (mut vout, mut dout) = compact_block_with_data(&mut nl, &valid, &data);
        if with_pads {
            vout = vout.into_iter().map(|l| nl.buf(l)).collect();
            dout = dout.into_iter().map(|l| nl.buf(l)).collect();
        }
        for v in vout {
            nl.mark_output(v);
        }
        for d in dout {
            nl.mark_output(d);
        }
        nl
    }
}

impl ConcentratorSwitch for Hyperconcentrator {
    fn inputs(&self) -> usize {
        self.n
    }

    fn outputs(&self) -> usize {
        self.n
    }

    fn kind(&self) -> ConcentratorKind {
        ConcentratorKind::Hyperconcentrator
    }

    fn route(&self, valid: &[bool]) -> Routing {
        assert_eq!(valid.len(), self.n);
        let mut rank = 0usize;
        let assignment = valid
            .iter()
            .map(|&v| {
                if v {
                    rank += 1;
                    Some(rank - 1)
                } else {
                    None
                }
            })
            .collect();
        Routing::from_assignment(assignment, self.n)
    }
}

/// Pad levels per chip traversal (input ring + output ring).
pub const PAD_LEVELS: u32 = 2;

/// `⌈lg n⌉` (0 for n = 1).
pub fn ceil_lg(n: usize) -> u32 {
    assert!(n > 0);
    usize::BITS - (n - 1).leading_zeros()
}

/// The selector literals `e_j = [count of ones in compacted L == j]`, as
/// AND-term *input lists* (so callers can widen the AND with more literals
/// without paying an extra level).
fn selector_terms(left: &[Literal]) -> Vec<Vec<Literal>> {
    let a = left.len();
    (0..=a)
        .map(|j| {
            let mut term = Vec::with_capacity(2);
            if j > 0 {
                term.push(left[j - 1]);
            }
            if j < a {
                term.push(left[j].complement());
            }
            term
        })
        .collect()
}

/// Merge two compacted blocks into one compacted block: two gate levels.
fn merge_blocks(nl: &mut Netlist, left: &[Literal], right: &[Literal]) -> Vec<Literal> {
    let a = left.len();
    let b = right.len();
    let selectors = selector_terms(left);
    let mut out = Vec::with_capacity(a + b);
    for i in 0..a + b {
        // Terms e_j ∧ R_{i−j} for all j with 0 ≤ i−j < b and 0 ≤ j ≤ a.
        let j_lo = i.saturating_sub(b - 1);
        let j_hi = i.min(a);
        let mut or_inputs: Vec<Literal> = Vec::new();
        if i < a {
            or_inputs.push(left[i]);
        }
        for j in j_lo..=j_hi {
            let mut and_inputs = selectors[j].clone();
            and_inputs.push(right[i - j]);
            or_inputs.push(nl.and(and_inputs));
        }
        out.push(nl.or(or_inputs));
    }
    out
}

/// Merge with data: the merged slot `i` carries the left slot-`i` data when
/// `l > i`, else the right slot-`(i−l)` data.
fn merge_blocks_with_data(
    nl: &mut Netlist,
    left_v: &[Literal],
    left_d: &[Literal],
    right_v: &[Literal],
    right_d: &[Literal],
) -> (Vec<Literal>, Vec<Literal>) {
    let a = left_v.len();
    let b = right_v.len();
    let merged_v = merge_blocks(nl, left_v, right_v);
    let selectors = selector_terms(left_v);
    let mut merged_d = Vec::with_capacity(a + b);
    for i in 0..a + b {
        let mut or_inputs: Vec<Literal> = Vec::new();
        if i < a {
            // l > i ⇔ L_i = 1 (left block is compacted).
            or_inputs.push(nl.and([left_v[i], left_d[i]]));
        }
        let j_lo = i.saturating_sub(b - 1);
        let j_hi = i.min(a);
        for j in j_lo..=j_hi {
            let mut and_inputs = selectors[j].clone();
            and_inputs.push(right_d[i - j]);
            or_inputs.push(nl.and(and_inputs));
        }
        merged_d.push(nl.or(or_inputs));
    }
    (merged_v, merged_d)
}

/// Recursively compact a block of valid bits. Returns compacted literals.
fn compact_block(nl: &mut Netlist, bits: &[Literal]) -> Vec<Literal> {
    if bits.len() <= 1 {
        return bits.to_vec();
    }
    let mid = bits.len().div_ceil(2);
    let left = compact_block(nl, &bits[..mid]);
    let right = compact_block(nl, &bits[mid..]);
    merge_blocks(nl, &left, &right)
}

/// Recursively compact valid bits while carrying data bits along.
fn compact_block_with_data(
    nl: &mut Netlist,
    valid: &[Literal],
    data: &[Literal],
) -> (Vec<Literal>, Vec<Literal>) {
    debug_assert_eq!(valid.len(), data.len());
    if valid.len() <= 1 {
        return (valid.to_vec(), data.to_vec());
    }
    let mid = valid.len().div_ceil(2);
    let (lv, ld) = compact_block_with_data(nl, &valid[..mid], &data[..mid]);
    let (rv, rd) = compact_block_with_data(nl, &valid[mid..], &data[mid..]);
    merge_blocks_with_data(nl, &lv, &ld, &rv, &rd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_concentration;

    fn bits_of(pattern: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (pattern >> i) & 1 == 1).collect()
    }

    #[test]
    fn functional_model_compacts_all_patterns() {
        let h = Hyperconcentrator::new(10);
        for pattern in 0u64..(1 << 10) {
            let valid = bits_of(pattern, 10);
            assert!(
                check_concentration(&h, &valid).is_empty(),
                "pattern {pattern:#x}"
            );
        }
    }

    #[test]
    fn routing_is_stable_order_preserving() {
        let h = Hyperconcentrator::new(6);
        let routing = h.route(&[false, true, true, false, true, false]);
        assert_eq!(
            routing.assignment,
            vec![None, Some(0), Some(1), None, Some(2), None]
        );
    }

    #[test]
    fn netlist_matches_functional_model_exhaustively() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 12, 16] {
            let h = Hyperconcentrator::new(n);
            let nl = h.build_netlist(false);
            assert_eq!(nl.input_count(), n);
            assert_eq!(nl.output_count(), n);
            for pattern in 0u64..(1u64 << n) {
                let valid = bits_of(pattern, n);
                assert_eq!(
                    nl.eval(&valid),
                    h.concentrate(&valid),
                    "n={n}, pattern {pattern:#x}"
                );
            }
        }
    }

    #[test]
    fn netlist_depth_is_exactly_two_ceil_lg_n() {
        // "a signal incurs exactly 2 lg n gate delays through the switch"
        // (the 1986 chip, quoted in §1).
        for n in [2usize, 4, 8, 16, 32, 64, 3, 5, 6, 7, 9, 33] {
            let h = Hyperconcentrator::new(n);
            let nl = h.build_netlist(false);
            assert_eq!(nl.depth(), 2 * ceil_lg(n), "n = {n}");
            let padded = h.build_netlist(true);
            assert_eq!(
                padded.depth(),
                2 * ceil_lg(n) + PAD_LEVELS,
                "n = {n} padded"
            );
        }
    }

    #[test]
    fn gate_count_scales_quadratically() {
        // Θ(n²) components: check the growth ratio quadruples (±50%) when
        // n doubles, over a few doublings.
        let counts: Vec<usize> = [16usize, 32, 64, 128]
            .iter()
            .map(|&n| {
                Hyperconcentrator::new(n)
                    .build_netlist(false)
                    .area_report()
                    .area_units
            })
            .collect();
        for w in counts.windows(2) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(
                (2.5..=6.0).contains(&ratio),
                "area growth ratio {ratio} not ~4x"
            );
        }
    }

    #[test]
    fn datapath_routes_message_bits() {
        let n = 8;
        let h = Hyperconcentrator::new(n);
        let nl = h.build_datapath_netlist(false);
        for pattern in 0u64..(1 << n) {
            let valid = bits_of(pattern, n);
            // Give each valid input a distinguishing data bit: input i
            // carries bit (i % 2 == 0).
            let data: Vec<bool> = (0..n).map(|i| valid[i] && i % 2 == 0).collect();
            let mut inputs = valid.clone();
            inputs.extend(&data);
            let out = nl.eval(&inputs);
            let (vout, dout) = out.split_at(n);

            let routing = h.route(&valid);
            for (input, &slot) in routing.assignment.iter().enumerate() {
                if let Some(out_idx) = slot {
                    assert!(vout[out_idx]);
                    assert_eq!(
                        dout[out_idx], data[input],
                        "pattern {pattern:#x}: data bit of input {input} mangled"
                    );
                }
            }
            // Vacant outputs carry 0.
            let k = valid.iter().filter(|&&v| v).count();
            for (i, &d) in dout.iter().enumerate() {
                if i >= k {
                    assert!(!d, "pattern {pattern:#x}: vacant output {i} carries data");
                }
            }
        }
    }

    #[test]
    fn datapath_depth_matches_control_depth() {
        let h = Hyperconcentrator::new(16);
        assert_eq!(
            h.build_datapath_netlist(false).depth(),
            h.build_netlist(false).depth()
        );
    }

    #[test]
    fn critical_path_spans_exactly_the_depth() {
        // The 2 lg n bound is realized by an actual input-to-output path.
        for n in [8usize, 16, 32] {
            let nl = Hyperconcentrator::new(n).build_netlist(false);
            let path = nl.critical_path();
            assert_eq!(path.len() as u32 - 1, nl.depth(), "n = {n}");
        }
    }

    #[test]
    fn delay_helpers() {
        let h = Hyperconcentrator::new(64);
        assert_eq!(h.logic_delay(), 12);
        assert_eq!(h.chip_delay(), 14);
        assert_eq!(ceil_lg(1), 0);
        assert_eq!(ceil_lg(2), 1);
        assert_eq!(ceil_lg(3), 2);
        assert_eq!(ceil_lg(1024), 10);
    }

    #[test]
    #[should_panic(expected = "at least one wire")]
    fn zero_size_rejected() {
        Hyperconcentrator::new(0);
    }
}
