//! The full-Revsort multichip *hyper*concentrator of §6.
//!
//! "If steps 1–3 of Algorithm 1 are repeated ⌈lg lg √n⌉ times, the
//! resulting matrix contains at most eight dirty rows. We can then complete
//! the full sorting by running three iterations of the Shearsort
//! algorithm." The construction here mirrors that pipeline with one stack
//! per sorting phase; a final *uniform-direction* row stack (pure wiring
//! choice) converts Shearsort's snake order into the row-major compaction
//! a hyperconcentrator must deliver. The measured chip-traversal count is
//! therefore `2⌈lg lg √n⌉ + 7` versus the paper's `2 lg lg n + 4` — see
//! EXPERIMENTS.md for the comparison.

use meshsort::{revsort_repetitions, row_reversal_permutation, ShearsortSchedule};
use serde::{Deserialize, Serialize};

use crate::revsort_switch::{integer_sqrt, rotate_rows_by_rev_permutation};
use crate::spec::{ConcentratorKind, ConcentratorSwitch, Routing};
use crate::staged::{sort_stage, Axis, StagedSwitch};

/// An n-by-n multichip hyperconcentrator built from the full Revsort
/// algorithm plus a Shearsort finish.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullRevsortHyperconcentrator {
    inner: StagedSwitch,
    side: usize,
    repetitions: usize,
    schedule: ShearsortSchedule,
}

impl FullRevsortHyperconcentrator {
    /// Build the hyperconcentrator for `n = 4^q` wires.
    pub fn new(n: usize) -> Self {
        let side = integer_sqrt(n);
        assert_eq!(side * side, n, "requires square n");
        assert!(side.is_power_of_two(), "requires √n = 2^q");

        let repetitions = revsort_repetitions(side);
        let schedule = ShearsortSchedule::paper_finish();
        let rotation = rotate_rows_by_rev_permutation(side);
        let snake = row_reversal_permutation(side, side);

        let mut stages = Vec::new();
        for rep in 0..repetitions {
            stages.push(sort_stage(
                side,
                side,
                Axis::Columns,
                None,
                None,
                format!("rep {rep}: sort columns"),
            ));
            // Row sort followed (in wiring) by the rev(i) rotation.
            stages.push(sort_stage(
                side,
                side,
                Axis::Rows,
                None,
                Some(&rotation),
                format!("rep {rep}: sort rows, rotate by rev(i)"),
            ));
        }
        for pair in 0..schedule.pairs {
            // Snake row phase: odd rows reversed on the way in and out.
            stages.push(sort_stage(
                side,
                side,
                Axis::Rows,
                Some(&snake),
                Some(&snake),
                format!("shearsort pair {pair}: snake row phase"),
            ));
            stages.push(sort_stage(
                side,
                side,
                Axis::Columns,
                None,
                None,
                format!("shearsort pair {pair}: column phase"),
            ));
        }
        if schedule.final_uniform_row {
            stages.push(sort_stage(
                side,
                side,
                Axis::Rows,
                None,
                None,
                "final uniform row phase",
            ));
        }

        let inner = StagedSwitch::new(
            format!("full-Revsort hyperconcentrator (n={n})"),
            n,
            n,
            ConcentratorKind::Hyperconcentrator,
            stages,
            (0..n).collect(),
        );
        FullRevsortHyperconcentrator {
            inner,
            side,
            repetitions,
            schedule,
        }
    }

    /// `√n`.
    pub fn side(&self) -> usize {
        self.side
    }

    /// The number of steps-1–3 repetitions used (⌈lg lg √n⌉).
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// The Shearsort finishing schedule.
    pub fn schedule(&self) -> ShearsortSchedule {
        self.schedule
    }

    /// Chips a message passes through (= number of stages).
    pub fn chip_traversals(&self) -> usize {
        self.inner.stages.len()
    }

    /// The paper's claimed traversal count, `2 lg lg n + 4`, for
    /// comparison in EXPERIMENTS.md.
    pub fn paper_claimed_traversals(&self) -> usize {
        2 * self.repetitions + 6
    }

    /// The underlying staged switch.
    pub fn staged(&self) -> &StagedSwitch {
        &self.inner
    }

    /// Total gate delays.
    pub fn delay(&self) -> u32 {
        self.inner.delay()
    }
}

impl ConcentratorSwitch for FullRevsortHyperconcentrator {
    fn inputs(&self) -> usize {
        self.inner.n
    }

    fn outputs(&self) -> usize {
        self.inner.m
    }

    fn kind(&self) -> ConcentratorKind {
        ConcentratorKind::Hyperconcentrator
    }

    fn route(&self, valid: &[bool]) -> Routing {
        self.inner.route(valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_concentration;

    fn bits_of(pattern: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (pattern >> i) & 1 == 1).collect()
    }

    #[test]
    fn compacts_all_patterns_exhaustively_n16() {
        let switch = FullRevsortHyperconcentrator::new(16);
        for pattern in 0u64..(1 << 16) {
            let valid = bits_of(pattern, 16);
            let violations = check_concentration(&switch, &valid);
            assert!(
                violations.is_empty(),
                "pattern {pattern:#x}: {violations:?}"
            );
        }
    }

    #[test]
    fn compacts_random_patterns_n64_and_n256() {
        for n in [64usize, 256] {
            let switch = FullRevsortHyperconcentrator::new(n);
            let mut state = n as u64 + 1;
            for _ in 0..1500 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let valid: Vec<bool> = (0..n)
                    .map(|i| (state.rotate_left((i % 64) as u32)) & 1 == 1)
                    .collect();
                let violations = check_concentration(&switch, &valid);
                assert!(violations.is_empty(), "n={n}, {state:#x}: {violations:?}");
            }
        }
    }

    #[test]
    fn routing_preserves_input_order() {
        // Hyperconcentrators route the k valid inputs to outputs 0..k; the
        // mesh simulation need not preserve input order, but every valid
        // input must land in the first k outputs exactly once.
        let switch = FullRevsortHyperconcentrator::new(16);
        let valid = bits_of(0b1010_0110_0101_1001, 16);
        let k = valid.iter().filter(|&&v| v).count();
        let routing = switch.route(&valid);
        let mut seen = vec![false; k];
        for (i, &v) in valid.iter().enumerate() {
            if v {
                let out = routing.assignment[i].expect("valid input must be routed");
                assert!(out < k);
                assert!(!seen[out]);
                seen[out] = true;
            } else {
                assert_eq!(routing.assignment[i], None);
            }
        }
    }

    #[test]
    fn traversal_counts() {
        let switch = FullRevsortHyperconcentrator::new(256);
        // reps = ⌈lg lg 16⌉ = 2; stages = 2*2 + 2*3 + 1 = 11.
        assert_eq!(switch.repetitions(), 2);
        assert_eq!(switch.chip_traversals(), 11);
        assert_eq!(switch.paper_claimed_traversals(), 10);
    }

    #[test]
    fn delay_scales_as_lg_n_lg_lg_n() {
        // delay = traversals × (2 lg √n + 2).
        let switch = FullRevsortHyperconcentrator::new(256);
        let per_chip = 2 * 4 + 2;
        assert_eq!(switch.delay(), switch.chip_traversals() as u32 * per_chip);
    }
}
