//! Chip-failure injection for the multichip switches.
//!
//! A multichip switch has a failure surface a single chip does not: one
//! dead hyperconcentrator silences (or worse, garbles) a whole row or
//! column of the mesh. This module injects the classic failure modes
//! into a [`StagedSwitch`] and measures the degraded switch — the
//! availability analysis a 1987 machine builder would have run before
//! committing to a stack design.
//!
//! Two evaluation paths cover the same fault model:
//!
//! * [`FaultySwitch`] — the message-level *reference*: faults applied
//!   during [`StagedSwitch::trace`]-style slot propagation. Slow, obviously
//!   correct, and the oracle the compiled path is differentially tested
//!   against.
//! * [`FaultableElab`] — the *compiled* path: the datapath elaboration with
//!   an explicit tap gate on every chip output pin
//!   ([`StagedSwitch::build_faultable_datapath`]), onto which a fault set
//!   is lowered as [`WireFault`]s ([`FaultableElab::wire_faults`]) and
//!   compiled into the levelized schedule
//!   ([`FaultableElab::compile_faulted`]). The 64-lane SWAR evaluator then
//!   runs the *faulted* switch at full batch speed.
//!
//! On top of both sits the campaign machinery: [`FaultCampaign`] draws a
//! deterministic, seeded schedule of permanent / intermittent / transient
//! chip faults, and [`run_campaign`] measures the degraded delivered
//! capacity frame by frame using the compiled path (64 random offered
//! patterns per evaluated word).

use std::borrow::Borrow;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use netlist::{CompiledNetlist, Netlist, Wire, WireFault};
use serde::{Deserialize, Serialize};

use crate::spec::{ConcentratorKind, ConcentratorSwitch, Routing};
use crate::staged::{StageKind, StagedSwitch};
use crate::verify::SplitMix64;

/// How a failed chip misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultMode {
    /// All outputs stuck invalid: every message entering the chip is lost.
    StuckInvalid,
    /// All outputs stuck valid: the chip floods its column with phantom
    /// carriers (downstream sees spurious traffic; real payloads are
    /// lost). The worst mode for a concentrator, since phantoms steal
    /// output slots.
    StuckValid,
    /// All output valid rails complemented — a failed dual-rail pad driver
    /// presenting the wrong rail. The chip floods where it was empty and
    /// silences where it was full; payloads are lost either way.
    Inverted,
}

/// A located fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChipFault {
    /// Stage index within the switch.
    pub stage: usize,
    /// Chip index within the stage.
    pub chip: usize,
    /// Failure mode.
    pub mode: FaultMode,
}

/// Chip-output tap wires of a faultable datapath elaboration:
/// `stages[s][c][p]` is the `(valid, data)` wire pair driven by the tap
/// `Buf` on pin `p` of chip `c` in stage `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTaps {
    /// Per stage, per chip, per pin: the tapped `(valid, data)` wires.
    pub stages: Vec<Vec<Vec<(Wire, Wire)>>>,
}

/// The faultable datapath elaboration of one switch: the tapped netlist,
/// its healthy compiled form, and the tap map fault sets are lowered
/// through. Obtained from [`StagedSwitch::faultable_logic`]; the cached
/// value is always the *healthy* base — per-fault-set overlays are derived
/// by [`FaultableElab::compile_faulted`] and owned by the caller, so
/// injection never pollutes the shared elaboration cache.
#[derive(Debug, Clone)]
pub struct FaultableElab {
    /// The tapped flat netlist (valid + data rails, no pads).
    pub netlist: Netlist,
    /// The healthy compiled engine for it.
    pub compiled: CompiledNetlist,
    /// Chip-output tap wires, for lowering [`ChipFault`]s.
    pub taps: FaultTaps,
}

impl FaultableElab {
    /// Lower chip faults to wire faults on the tap wires.
    ///
    /// Mode mapping, per output pin of the faulted chip:
    ///
    /// * `StuckInvalid` → valid stuck-at-0, data stuck-at-0;
    /// * `StuckValid`   → valid stuck-at-1, data stuck-at-0 (phantoms
    ///   carry no payload);
    /// * `Inverted`     → valid flipped,    data stuck-at-0 (whatever the
    ///   rail now claims, the payload path is garbage).
    ///
    /// When several faults name the same chip only the first applies,
    /// matching the reference [`FaultySwitch`] lookup.
    ///
    /// # Panics
    /// If a fault names a stage or chip that does not exist.
    pub fn wire_faults(&self, faults: &[ChipFault]) -> Vec<WireFault> {
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let mut out = Vec::new();
        for fault in faults {
            let stage = self
                .taps
                .stages
                .get(fault.stage)
                .expect("fault names missing stage");
            let pins = stage.get(fault.chip).expect("fault names missing chip");
            if seen.contains(&(fault.stage, fault.chip)) {
                continue;
            }
            seen.push((fault.stage, fault.chip));
            for &(valid, data) in pins {
                match fault.mode {
                    FaultMode::StuckInvalid => out.push(WireFault::stuck(valid, false)),
                    FaultMode::StuckValid => out.push(WireFault::stuck(valid, true)),
                    FaultMode::Inverted => out.push(WireFault::flip(valid)),
                }
                out.push(WireFault::stuck(data, false));
            }
        }
        out
    }

    /// A compiled engine with `faults` burned into the schedule. The
    /// overlay shares nothing mutable with the healthy base and runs at
    /// identical batch speed.
    pub fn compile_faulted(&self, faults: &[ChipFault]) -> CompiledNetlist {
        self.compiled.with_faults(&self.wire_faults(faults))
    }
}

/// A staged switch with injected chip faults.
///
/// Generic over ownership of the underlying switch: borrow for scoped use
/// (`FaultySwitch::new(&staged, …)`), or hand it an `Arc<StagedSwitch>`
/// (the default type parameter) when the faulty view must outlive a scope
/// or cross threads, as fabric shards do.
pub struct FaultySwitch<S: Borrow<StagedSwitch> = Arc<StagedSwitch>> {
    inner: S,
    faults: Vec<ChipFault>,
}

impl<S: Borrow<StagedSwitch>> FaultySwitch<S> {
    /// Inject `faults` into `inner`.
    ///
    /// # Panics
    /// If a fault names a stage or chip that does not exist.
    pub fn new(inner: S, faults: Vec<ChipFault>) -> Self {
        {
            let switch = inner.borrow();
            for fault in &faults {
                assert!(
                    fault.stage < switch.stages.len(),
                    "fault names missing stage"
                );
                assert!(
                    fault.chip < switch.stages[fault.stage].chip_count,
                    "fault names missing chip"
                );
            }
        }
        FaultySwitch { inner, faults }
    }

    /// The underlying healthy switch.
    pub fn inner(&self) -> &StagedSwitch {
        self.inner.borrow()
    }

    /// The injected faults, in injection order.
    pub fn faults(&self) -> &[ChipFault] {
        &self.faults
    }

    fn fault_at(&self, stage: usize, chip: usize) -> Option<FaultMode> {
        self.faults
            .iter()
            .find(|f| f.stage == stage && f.chip == chip)
            .map(|f| f.mode)
    }

    /// Trace wire occupancy through the faulty switch: the faulted
    /// equivalent of [`StagedSwitch::trace`]. Public so differential
    /// harnesses can compare per-wire, not just per-routing.
    pub fn trace(&self, valid: &[bool]) -> Vec<(bool, Option<usize>)> {
        let inner = self.inner.borrow();
        assert_eq!(valid.len(), inner.n);
        let mut wires: Vec<(bool, Option<usize>)> = valid
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, v.then_some(i)))
            .collect();
        for (stage_idx, stage) in inner.stages.iter().enumerate() {
            let pins = stage.chip_pins;
            let mut next = vec![(false, None); stage.out_len];
            for chip in 0..stage.chip_count {
                let base = chip * pins;
                let gathered: Vec<(bool, Option<usize>)> = (0..pins)
                    .map(|p| match stage.input_map[base + p] {
                        crate::staged::PinSource::Prev(i) => wires[i],
                        crate::staged::PinSource::Const(v) => (v, None),
                    })
                    .collect();
                // What the chip would do if healthy…
                let healthy: Vec<(bool, Option<usize>)> = match stage.kind {
                    StageKind::Compactor => {
                        let mut compacted: Vec<(bool, Option<usize>)> =
                            gathered.iter().copied().filter(|&(v, _)| v).collect();
                        compacted.resize(pins, (false, None));
                        compacted
                    }
                    StageKind::PassThrough => gathered,
                };
                // …and what its failed pads actually present.
                let outputs: Vec<(bool, Option<usize>)> = match self.fault_at(stage_idx, chip) {
                    None => healthy,
                    Some(FaultMode::StuckInvalid) => vec![(false, None); pins],
                    Some(FaultMode::StuckValid) => vec![(true, None); pins],
                    Some(FaultMode::Inverted) => healthy.iter().map(|&(v, _)| (!v, None)).collect(),
                };
                // Faulty switches may drop real messages at padding
                // positions; that is exactly the failure being modeled,
                // so no assertion on dropped wires here.
                for (p, &slot) in outputs.iter().enumerate() {
                    if let Some(dst) = stage.output_map[base + p] {
                        next[dst] = slot;
                    }
                }
            }
            wires = next;
        }
        wires
    }
}

impl<S: Borrow<StagedSwitch>> ConcentratorSwitch for FaultySwitch<S> {
    fn inputs(&self) -> usize {
        self.inner.borrow().n
    }

    fn outputs(&self) -> usize {
        self.inner.borrow().m
    }

    fn kind(&self) -> ConcentratorKind {
        // A faulty switch promises nothing.
        ConcentratorKind::Partial { alpha: 0.0 }
    }

    fn route(&self, valid: &[bool]) -> Routing {
        let inner = self.inner.borrow();
        let wires = self.trace(valid);
        let mut assignment = vec![None; inner.n];
        for (out_idx, &pos) in inner.output_positions.iter().enumerate() {
            let (v, source) = wires[pos];
            if v {
                if let Some(src) = source {
                    assignment[src] = Some(out_idx);
                }
            }
        }
        Routing::from_assignment(assignment, inner.m)
    }
}

/// Measure delivery degradation: mean delivered fraction over seeded
/// random patterns at density `p`.
pub fn degradation<S: ConcentratorSwitch + ?Sized>(
    switch: &S,
    p: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    let n = switch.inputs();
    let mut rng = SplitMix64(seed);
    let mut offered = 0usize;
    let mut delivered = 0usize;
    for _ in 0..trials {
        let valid = rng.valid_bits(n, p);
        offered += valid.iter().filter(|&&v| v).count();
        delivered += switch.route(&valid).routed();
    }
    if offered == 0 {
        1.0
    } else {
        delivered as f64 / offered as f64
    }
}

/// Arrival model of a seeded fault campaign. All draws are pure functions
/// of `(seed, stage, chip, frame)`, so the schedule is reproducible and
/// independent of evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Root seed; same seed + same switch ⇒ same schedule.
    pub seed: u64,
    /// Campaign length in routing frames.
    pub frames: usize,
    /// Probability a chip suffers a *permanent* fault at some uniformly
    /// drawn frame (active from that frame onward).
    pub permanent_rate: f64,
    /// Probability a chip is an *intermittent* flapper, faulted during
    /// pseudo-random half of its epochs.
    pub intermittent_rate: f64,
    /// Epoch length (frames) of the intermittent on/off pattern.
    pub intermittent_period: usize,
    /// Per-chip-per-frame probability of a one-frame *transient* fault.
    pub transient_rate: f64,
}

impl CampaignSpec {
    /// A fault-free campaign: useful as a baseline of the same length.
    pub fn quiet(seed: u64, frames: usize) -> Self {
        CampaignSpec {
            seed,
            frames,
            permanent_rate: 0.0,
            intermittent_rate: 0.0,
            intermittent_period: 16,
            transient_rate: 0.0,
        }
    }
}

fn chip_key(seed: u64, stage: usize, chip: usize) -> u64 {
    let mut h = seed ^ 0x517C_C1B7_2722_0A95;
    h ^= (stage as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h = h.rotate_left(23);
    h ^ (chip as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

fn pick_mode(rng: &mut SplitMix64) -> FaultMode {
    match rng.next_u64() % 3 {
        0 => FaultMode::StuckInvalid,
        1 => FaultMode::StuckValid,
        _ => FaultMode::Inverted,
    }
}

/// A fully materialized fault schedule: for every frame, the canonical
/// (sorted, one-per-chip) set of active chip faults. When a chip is
/// eligible for several classes in one frame, permanent wins over
/// intermittent wins over transient.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaign {
    spec: CampaignSpec,
    frames: Vec<Vec<ChipFault>>,
}

impl FaultCampaign {
    /// Draw the schedule for `switch` under `spec`.
    pub fn generate(switch: &StagedSwitch, spec: &CampaignSpec) -> FaultCampaign {
        let mut frames: Vec<Vec<ChipFault>> = vec![Vec::new(); spec.frames];
        for (stage_idx, stage) in switch.stages.iter().enumerate() {
            for chip in 0..stage.chip_count {
                let key = chip_key(spec.seed, stage_idx, chip);
                let mut rng = SplitMix64(key);
                let permanent = rng.bernoulli(spec.permanent_rate).then(|| {
                    let start = (rng.next_u64() % (spec.frames.max(1) as u64)) as usize;
                    (start, pick_mode(&mut rng))
                });
                let intermittent = rng.bernoulli(spec.intermittent_rate).then(|| {
                    let phase = rng.next_u64();
                    (phase, pick_mode(&mut rng))
                });
                for (frame, active) in frames.iter_mut().enumerate() {
                    let mode = if let Some((_, mode)) =
                        permanent.filter(|&(start, _)| frame >= start)
                    {
                        Some(mode)
                    } else if let Some((phase, mode)) = intermittent {
                        let epoch = frame / spec.intermittent_period.max(1);
                        let coin =
                            SplitMix64(phase ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                                .next_u64();
                        (coin & 1 == 0).then_some(mode)
                    } else {
                        let mut transient =
                            SplitMix64(key ^ (frame as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
                        transient
                            .bernoulli(spec.transient_rate)
                            .then(|| pick_mode(&mut transient))
                    };
                    if let Some(mode) = mode {
                        active.push(ChipFault {
                            stage: stage_idx,
                            chip,
                            mode,
                        });
                    }
                }
            }
        }
        for frame in &mut frames {
            frame.sort_unstable();
        }
        FaultCampaign {
            spec: *spec,
            frames,
        }
    }

    /// The spec this schedule was drawn from.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Campaign length in frames.
    pub fn frames(&self) -> usize {
        self.frames.len()
    }

    /// The canonical fault set active during `frame`.
    pub fn faults_at(&self, frame: usize) -> &[ChipFault] {
        &self.frames[frame]
    }

    /// The fault set active at the clock's current tick, mapping
    /// `ticks_per_frame` clock ticks to one campaign frame and clamping
    /// past the end (a finished campaign holds its final state). Under a
    /// [`VirtualClock`](crate::clock::VirtualClock) this makes a live
    /// fault schedule a pure function of virtual time — the hook the
    /// deterministic simulation harness drives mid-run chip failures
    /// through.
    pub fn faults_at_clock(
        &self,
        clock: &dyn crate::clock::Clock,
        ticks_per_frame: u64,
    ) -> &[ChipFault] {
        assert!(ticks_per_frame > 0, "ticks_per_frame must be positive");
        if self.frames.is_empty() {
            return &[];
        }
        let frame = (clock.now() / ticks_per_frame) as usize;
        self.faults_at(frame.min(self.frames.len() - 1))
    }

    /// Number of distinct fault sets across the campaign — the number of
    /// compiled overlays [`run_campaign`] materializes.
    pub fn distinct_fault_sets(&self) -> usize {
        self.frames.iter().collect::<HashSet<_>>().len()
    }
}

/// Degradation measured over one campaign frame (64 offered patterns,
/// one per SWAR lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameDegradation {
    /// Frame index.
    pub frame: usize,
    /// Chips faulted during this frame.
    pub faults_active: usize,
    /// Valid inputs offered across the frame's 64 lanes.
    pub offered: u64,
    /// Real messages delivered (phantoms excluded).
    pub delivered: u64,
}

/// The degraded-capacity report of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Campaign length in frames.
    pub frames: usize,
    /// Total chips in the switch (the failure surface).
    pub chips: usize,
    /// Offered traffic density per input per lane.
    pub density: f64,
    /// Distinct fault sets, i.e. compiled overlays materialized.
    pub distinct_fault_sets: usize,
    /// Total valid inputs offered.
    pub offered: u64,
    /// Total real messages delivered.
    pub delivered: u64,
    /// Per-frame degradation curve.
    pub per_frame: Vec<FrameDegradation>,
}

impl CampaignReport {
    /// Overall delivered fraction.
    pub fn delivery_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }

    /// The worst per-frame delivered fraction (empty frames count as 1).
    pub fn worst_frame_rate(&self) -> f64 {
        self.per_frame
            .iter()
            .map(|f| {
                if f.offered == 0 {
                    1.0
                } else {
                    f.delivered as f64 / f.offered as f64
                }
            })
            .fold(1.0, f64::min)
    }
}

/// Run `campaign` against `switch` at offered `density`, measuring the
/// delivered capacity of every frame on the compiled fault path.
///
/// Each frame evaluates 64 independent offered patterns in one SWAR sweep
/// of the frame's fault-compiled overlay. The data rail carries a *marker
/// bit* per real message (data in = valid in), so
/// `popcount(valid_out & data_out)` counts exactly the delivered real
/// messages: phantom carriers injected by `StuckValid`/`Inverted` chips
/// and padding constants all carry data 0 and are excluded. Overlays are
/// memoized per distinct fault set, so a campaign pays one `with_faults`
/// per set, not per frame.
pub fn run_campaign(
    switch: &StagedSwitch,
    campaign: &FaultCampaign,
    density: f64,
) -> CampaignReport {
    let elab = switch.faultable_logic();
    let n = switch.n;
    let m = switch.m;
    let mut scratch = elab.compiled.scratch();
    let mut overlays: HashMap<&[ChipFault], CompiledNetlist> = HashMap::new();
    let mut word_in = vec![0u64; 2 * n];
    let mut word_out = vec![0u64; 2 * m];
    // Traffic stream: keyed off the campaign seed but distinct from the
    // fault-schedule streams.
    let mut rng = SplitMix64(campaign.spec.seed ^ 0xA076_1D64_78BD_642F);
    let mut per_frame = Vec::with_capacity(campaign.frames());
    let (mut total_offered, mut total_delivered) = (0u64, 0u64);
    for frame in 0..campaign.frames() {
        let faults = campaign.faults_at(frame);
        let compiled = overlays
            .entry(faults)
            .or_insert_with(|| elab.compile_faulted(faults));
        let mut offered = 0u64;
        for i in 0..n {
            let mut word = 0u64;
            for bit in 0..64 {
                if rng.bernoulli(density) {
                    word |= 1u64 << bit;
                }
            }
            offered += u64::from(word.count_ones());
            word_in[i] = word;
            word_in[n + i] = word; // marker rail
        }
        compiled.eval_word_into(&word_in, &mut scratch, &mut word_out);
        let delivered: u64 = (0..m)
            .map(|j| u64::from((word_out[j] & word_out[m + j]).count_ones()))
            .sum();
        debug_assert!(delivered <= offered, "markers multiplied in flight");
        total_offered += offered;
        total_delivered += delivered;
        per_frame.push(FrameDegradation {
            frame,
            faults_active: faults.len(),
            offered,
            delivered,
        });
    }
    CampaignReport {
        frames: campaign.frames(),
        chips: switch.chip_count(),
        density,
        distinct_fault_sets: overlays.len(),
        offered: total_offered,
        delivered: total_delivered,
        per_frame,
    }
}

impl serde_json::ToJson for CampaignSpec {
    fn to_json(&self) -> serde_json::Value {
        serde_json::object([
            ("seed", self.seed.to_json()),
            ("frames", (self.frames as u64).to_json()),
            ("permanent_rate", self.permanent_rate.to_json()),
            ("intermittent_rate", self.intermittent_rate.to_json()),
            (
                "intermittent_period",
                (self.intermittent_period as u64).to_json(),
            ),
            ("transient_rate", self.transient_rate.to_json()),
        ])
    }
}

impl serde_json::ToJson for FrameDegradation {
    fn to_json(&self) -> serde_json::Value {
        serde_json::object([
            ("frame", (self.frame as u64).to_json()),
            ("faults_active", (self.faults_active as u64).to_json()),
            ("offered", self.offered.to_json()),
            ("delivered", self.delivered.to_json()),
        ])
    }
}

impl serde_json::ToJson for CampaignReport {
    fn to_json(&self) -> serde_json::Value {
        serde_json::object([
            ("frames", (self.frames as u64).to_json()),
            ("chips", (self.chips as u64).to_json()),
            ("density", self.density.to_json()),
            (
                "distinct_fault_sets",
                (self.distinct_fault_sets as u64).to_json(),
            ),
            ("offered", self.offered.to_json()),
            ("delivered", self.delivered.to_json()),
            ("delivery_rate", self.delivery_rate().to_json()),
            ("worst_frame_rate", self.worst_frame_rate().to_json()),
            ("per_frame", self.per_frame.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revsort_switch::{RevsortLayout, RevsortSwitch};

    fn switch() -> RevsortSwitch {
        RevsortSwitch::new(64, 48, RevsortLayout::TwoDee)
    }

    #[test]
    fn no_faults_matches_the_healthy_switch() {
        let healthy = switch();
        let faulty = FaultySwitch::new(healthy.staged(), vec![]);
        let mut state = 5u64;
        for _ in 0..300 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let valid: Vec<bool> = (0..64).map(|i| (state >> i) & 1 == 1).collect();
            assert_eq!(healthy.route(&valid), faulty.route(&valid));
        }
    }

    #[test]
    fn stuck_invalid_chip_loses_its_column() {
        let healthy = switch();
        let fault = ChipFault {
            stage: 0,
            chip: 3,
            mode: FaultMode::StuckInvalid,
        };
        let faulty = FaultySwitch::new(healthy.staged(), vec![fault]);
        // Only column 3 carries messages: all lost.
        let valid: Vec<bool> = (0..64).map(|i| i % 8 == 3).collect();
        let routing = faulty.route(&valid);
        assert_eq!(routing.routed(), 0);
        // Other columns unaffected.
        let valid: Vec<bool> = (0..64).map(|i| i % 8 == 5).collect();
        assert_eq!(faulty.route(&valid).routed(), 8);
    }

    #[test]
    fn stuck_valid_floods_and_displaces_real_traffic() {
        let healthy = switch();
        let fault = ChipFault {
            stage: 0,
            chip: 0,
            mode: FaultMode::StuckValid,
        };
        let faulty = FaultySwitch::new(healthy.staged(), vec![fault]);
        let healthy_rate = degradation(&healthy, 0.5, 300, 9);
        let faulty_rate = degradation(&faulty, 0.5, 300, 9);
        assert!(
            faulty_rate < healthy_rate,
            "phantom flood must displace real messages: {faulty_rate} vs {healthy_rate}"
        );
    }

    #[test]
    fn stuck_invalid_degrades_proportionally() {
        let healthy = switch();
        let fault = ChipFault {
            stage: 0,
            chip: 2,
            mode: FaultMode::StuckInvalid,
        };
        let faulty = FaultySwitch::new(healthy.staged(), vec![fault]);
        let rate = degradation(&faulty, 0.5, 400, 11);
        // One of eight first-stage chips dead: expect roughly 7/8 of
        // healthy delivery under light-to-moderate load.
        assert!(rate > 0.6 && rate < 0.98, "rate {rate}");
    }

    #[test]
    fn inverted_chip_floods_when_idle_and_silences_when_full() {
        let healthy = switch();
        let fault = ChipFault {
            stage: 0,
            chip: 1,
            mode: FaultMode::Inverted,
        };
        let faulty = FaultySwitch::new(healthy.staged(), vec![fault]);
        // Column 1 fully loaded: the healthy chip would deliver all 8;
        // inverted, its outputs all read invalid — everything lost.
        let valid: Vec<bool> = (0..64).map(|i| i % 8 == 1).collect();
        assert_eq!(faulty.route(&valid).routed(), 0);
        // Column 1 idle: the inverted chip floods 8 phantoms into the
        // switch, which steal output slots from the real column-5 traffic
        // but are never counted as deliveries themselves.
        let valid: Vec<bool> = (0..64).map(|i| i % 8 == 5).collect();
        let flooded = faulty.route(&valid).routed();
        assert!(flooded <= 8, "phantoms must not be counted as real");
    }

    #[test]
    fn arc_owned_variant_routes_identically() {
        let healthy = switch();
        let arc = Arc::new(healthy.staged().clone());
        let fault = ChipFault {
            stage: 0,
            chip: 3,
            mode: FaultMode::StuckValid,
        };
        let borrowed = FaultySwitch::new(healthy.staged(), vec![fault]);
        let owned: FaultySwitch = FaultySwitch::new(Arc::clone(&arc), vec![fault]);
        let mut rng = SplitMix64(21);
        for _ in 0..100 {
            let valid = rng.valid_bits(64, 0.4);
            assert_eq!(borrowed.route(&valid), owned.route(&valid));
        }
        // The owned variant is 'static: it can move into a thread.
        let handle = std::thread::spawn(move || owned.route(&[true; 64]).routed());
        assert!(handle.join().unwrap() > 0);
    }

    #[test]
    fn faultable_elaboration_matches_untapped_datapath_when_healthy() {
        let healthy = RevsortSwitch::new(16, 8, RevsortLayout::TwoDee);
        let staged = healthy.staged();
        let untapped = staged.datapath_logic(false);
        let tapped = staged.faultable_logic();
        let mut rng = SplitMix64(3);
        for _ in 0..50 {
            let inputs: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
            assert_eq!(
                untapped.compiled.eval_word(&inputs),
                tapped.compiled.eval_word(&inputs),
                "chip-output taps must be semantically invisible"
            );
        }
    }

    #[test]
    fn wire_faults_applies_only_the_first_fault_per_chip() {
        let healthy = RevsortSwitch::new(16, 8, RevsortLayout::TwoDee);
        let elab = healthy.staged().faultable_logic();
        let first = ChipFault {
            stage: 0,
            chip: 0,
            mode: FaultMode::StuckValid,
        };
        let second = ChipFault {
            stage: 0,
            chip: 0,
            mode: FaultMode::StuckInvalid,
        };
        assert_eq!(
            elab.wire_faults(&[first, second]),
            elab.wire_faults(&[first]),
            "duplicate chip faults must resolve first-wins, like the reference"
        );
    }

    #[test]
    fn campaign_schedule_is_deterministic_and_one_fault_per_chip() {
        let healthy = switch();
        let spec = CampaignSpec {
            seed: 77,
            frames: 64,
            permanent_rate: 0.2,
            intermittent_rate: 0.3,
            intermittent_period: 8,
            transient_rate: 0.05,
        };
        let a = FaultCampaign::generate(healthy.staged(), &spec);
        let b = FaultCampaign::generate(healthy.staged(), &spec);
        assert_eq!(a, b, "same seed must draw the same schedule");
        let mut any = false;
        for frame in 0..a.frames() {
            let faults = a.faults_at(frame);
            any |= !faults.is_empty();
            let mut chips: Vec<(usize, usize)> = faults.iter().map(|f| (f.stage, f.chip)).collect();
            chips.dedup();
            assert_eq!(chips.len(), faults.len(), "one fault per chip per frame");
            assert!(faults.windows(2).all(|w| w[0] <= w[1]), "canonical order");
        }
        assert!(any, "these rates must actually draw faults");
    }

    #[test]
    fn clock_sampling_scales_and_clamps() {
        use crate::clock::{Clock, VirtualClock};
        let healthy = switch();
        let spec = CampaignSpec {
            seed: 77,
            frames: 8,
            permanent_rate: 0.5,
            intermittent_rate: 0.3,
            intermittent_period: 4,
            transient_rate: 0.1,
        };
        let campaign = FaultCampaign::generate(healthy.staged(), &spec);
        let clock = VirtualClock::new();
        // Four ticks per frame: ticks 0..4 sample frame 0, 4..8 frame 1, …
        for frame in 0..spec.frames {
            for _ in 0..4 {
                assert_eq!(
                    campaign.faults_at_clock(&clock, 4),
                    campaign.faults_at(frame)
                );
                clock.advance(1);
            }
        }
        // Past the end the campaign holds its final state.
        clock.advance(1000);
        assert_eq!(
            campaign.faults_at_clock(&clock, 4),
            campaign.faults_at(spec.frames - 1)
        );
        assert_eq!(clock.now(), 4 * spec.frames as u64 + 1000);
    }

    #[test]
    fn permanent_faults_never_recover() {
        let healthy = switch();
        let spec = CampaignSpec {
            seed: 5,
            frames: 40,
            permanent_rate: 1.0,
            intermittent_rate: 0.0,
            intermittent_period: 16,
            transient_rate: 0.0,
        };
        let campaign = FaultCampaign::generate(healthy.staged(), &spec);
        for frame in 1..campaign.frames() {
            let prev: HashSet<_> = campaign.faults_at(frame - 1).iter().collect();
            let now: HashSet<_> = campaign.faults_at(frame).iter().collect();
            assert!(
                prev.is_subset(&now),
                "a permanent fault disappeared at frame {frame}"
            );
        }
        // Every chip fails by the end (rate 1.0).
        assert_eq!(
            campaign.faults_at(campaign.frames() - 1).len(),
            healthy.staged().chip_count()
        );
    }

    #[test]
    fn quiet_campaign_reports_healthy_capacity() {
        let healthy = RevsortSwitch::new(16, 8, RevsortLayout::TwoDee);
        let campaign = FaultCampaign::generate(healthy.staged(), &CampaignSpec::quiet(1, 20));
        let report = run_campaign(healthy.staged(), &campaign, 0.3);
        assert_eq!(report.distinct_fault_sets, 1);
        assert!(report.offered > 0);
        // Light load on a healthy switch: nearly everything lands.
        assert!(report.delivery_rate() > 0.9, "{}", report.delivery_rate());
    }

    #[test]
    fn campaign_reports_are_reproducible_and_degraded() {
        let healthy = RevsortSwitch::new(16, 8, RevsortLayout::TwoDee);
        let spec = CampaignSpec {
            seed: 13,
            frames: 30,
            permanent_rate: 0.5,
            intermittent_rate: 0.0,
            intermittent_period: 8,
            transient_rate: 0.0,
        };
        let campaign = FaultCampaign::generate(healthy.staged(), &spec);
        let a = run_campaign(healthy.staged(), &campaign, 0.4);
        let b = run_campaign(healthy.staged(), &campaign, 0.4);
        assert_eq!(a, b, "same campaign must measure identically");
        let quiet = FaultCampaign::generate(healthy.staged(), &CampaignSpec::quiet(13, 30));
        let baseline = run_campaign(healthy.staged(), &quiet, 0.4);
        assert!(
            a.delivery_rate() < baseline.delivery_rate(),
            "permanent faults must cost capacity: {} vs {}",
            a.delivery_rate(),
            baseline.delivery_rate()
        );
    }

    #[test]
    #[should_panic(expected = "missing chip")]
    fn fault_location_is_validated() {
        let healthy = switch();
        FaultySwitch::new(
            healthy.staged(),
            vec![ChipFault {
                stage: 0,
                chip: 99,
                mode: FaultMode::StuckInvalid,
            }],
        );
    }
}
