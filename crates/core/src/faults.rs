//! Chip-failure injection for the multichip switches.
//!
//! A multichip switch has a failure surface a single chip does not: one
//! dead hyperconcentrator silences (or worse, garbles) a whole row or
//! column of the mesh. This module injects the two classic failure modes
//! into a [`StagedSwitch`] and measures the degraded switch — the
//! availability analysis a 1987 machine builder would have run before
//! committing to a stack design.

use serde::{Deserialize, Serialize};

use crate::spec::{ConcentratorKind, ConcentratorSwitch, Routing};
use crate::staged::{StageKind, StagedSwitch};

/// How a failed chip misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultMode {
    /// All outputs stuck invalid: every message entering the chip is lost.
    StuckInvalid,
    /// All outputs stuck valid: the chip floods its column with phantom
    /// carriers (downstream sees spurious traffic; real payloads are
    /// lost). The worst mode for a concentrator, since phantoms steal
    /// output slots.
    StuckValid,
}

/// A located fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipFault {
    /// Stage index within the switch.
    pub stage: usize,
    /// Chip index within the stage.
    pub chip: usize,
    /// Failure mode.
    pub mode: FaultMode,
}

/// A staged switch with injected chip faults.
pub struct FaultySwitch<'a> {
    inner: &'a StagedSwitch,
    faults: Vec<ChipFault>,
}

impl<'a> FaultySwitch<'a> {
    /// Inject `faults` into `inner`.
    ///
    /// # Panics
    /// If a fault names a stage or chip that does not exist.
    pub fn new(inner: &'a StagedSwitch, faults: Vec<ChipFault>) -> Self {
        for fault in &faults {
            assert!(
                fault.stage < inner.stages.len(),
                "fault names missing stage"
            );
            assert!(
                fault.chip < inner.stages[fault.stage].chip_count,
                "fault names missing chip"
            );
        }
        FaultySwitch { inner, faults }
    }

    fn fault_at(&self, stage: usize, chip: usize) -> Option<FaultMode> {
        self.faults
            .iter()
            .find(|f| f.stage == stage && f.chip == chip)
            .map(|f| f.mode)
    }

    /// Trace wire occupancy through the faulty switch.
    fn trace(&self, valid: &[bool]) -> Vec<(bool, Option<usize>)> {
        assert_eq!(valid.len(), self.inner.n);
        let mut wires: Vec<(bool, Option<usize>)> = valid
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, v.then_some(i)))
            .collect();
        for (stage_idx, stage) in self.inner.stages.iter().enumerate() {
            let pins = stage.chip_pins;
            let mut next = vec![(false, None); stage.out_len];
            for chip in 0..stage.chip_count {
                let base = chip * pins;
                let gathered: Vec<(bool, Option<usize>)> = (0..pins)
                    .map(|p| match stage.input_map[base + p] {
                        crate::staged::PinSource::Prev(i) => wires[i],
                        crate::staged::PinSource::Const(v) => (v, None),
                    })
                    .collect();
                let outputs: Vec<(bool, Option<usize>)> =
                    match (self.fault_at(stage_idx, chip), stage.kind) {
                        (Some(FaultMode::StuckInvalid), _) => vec![(false, None); pins],
                        (Some(FaultMode::StuckValid), _) => vec![(true, None); pins],
                        (None, StageKind::Compactor) => {
                            let mut compacted: Vec<(bool, Option<usize>)> =
                                gathered.iter().copied().filter(|&(v, _)| v).collect();
                            compacted.resize(pins, (false, None));
                            compacted
                        }
                        (None, StageKind::PassThrough) => gathered,
                    };
                // Faulty switches may drop real messages at padding
                // positions; that is exactly the failure being modeled,
                // so no assertion on dropped wires here.
                for (p, &slot) in outputs.iter().enumerate() {
                    if let Some(dst) = stage.output_map[base + p] {
                        next[dst] = slot;
                    }
                }
            }
            wires = next;
        }
        wires
    }
}

impl ConcentratorSwitch for FaultySwitch<'_> {
    fn inputs(&self) -> usize {
        self.inner.n
    }

    fn outputs(&self) -> usize {
        self.inner.m
    }

    fn kind(&self) -> ConcentratorKind {
        // A faulty switch promises nothing.
        ConcentratorKind::Partial { alpha: 0.0 }
    }

    fn route(&self, valid: &[bool]) -> Routing {
        let wires = self.trace(valid);
        let mut assignment = vec![None; self.inner.n];
        for (out_idx, &pos) in self.inner.output_positions.iter().enumerate() {
            let (v, source) = wires[pos];
            if v {
                if let Some(src) = source {
                    assignment[src] = Some(out_idx);
                }
            }
        }
        Routing::from_assignment(assignment, self.inner.m)
    }
}

/// Measure delivery degradation: mean delivered fraction over seeded
/// random patterns at density `p`.
pub fn degradation<S: ConcentratorSwitch + ?Sized>(
    switch: &S,
    p: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    let n = switch.inputs();
    let mut rng = crate::verify::SplitMix64(seed);
    let mut offered = 0usize;
    let mut delivered = 0usize;
    for _ in 0..trials {
        let valid = rng.valid_bits(n, p);
        offered += valid.iter().filter(|&&v| v).count();
        delivered += switch.route(&valid).routed();
    }
    if offered == 0 {
        1.0
    } else {
        delivered as f64 / offered as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revsort_switch::{RevsortLayout, RevsortSwitch};

    fn switch() -> RevsortSwitch {
        RevsortSwitch::new(64, 48, RevsortLayout::TwoDee)
    }

    #[test]
    fn no_faults_matches_the_healthy_switch() {
        let healthy = switch();
        let faulty = FaultySwitch::new(healthy.staged(), vec![]);
        let mut state = 5u64;
        for _ in 0..300 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let valid: Vec<bool> = (0..64).map(|i| (state >> i) & 1 == 1).collect();
            assert_eq!(healthy.route(&valid), faulty.route(&valid));
        }
    }

    #[test]
    fn stuck_invalid_chip_loses_its_column() {
        let healthy = switch();
        let fault = ChipFault {
            stage: 0,
            chip: 3,
            mode: FaultMode::StuckInvalid,
        };
        let faulty = FaultySwitch::new(healthy.staged(), vec![fault]);
        // Only column 3 carries messages: all lost.
        let valid: Vec<bool> = (0..64).map(|i| i % 8 == 3).collect();
        let routing = faulty.route(&valid);
        assert_eq!(routing.routed(), 0);
        // Other columns unaffected.
        let valid: Vec<bool> = (0..64).map(|i| i % 8 == 5).collect();
        assert_eq!(faulty.route(&valid).routed(), 8);
    }

    #[test]
    fn stuck_valid_floods_and_displaces_real_traffic() {
        let healthy = switch();
        let fault = ChipFault {
            stage: 0,
            chip: 0,
            mode: FaultMode::StuckValid,
        };
        let faulty = FaultySwitch::new(healthy.staged(), vec![fault]);
        let healthy_rate = degradation(&healthy, 0.5, 300, 9);
        let faulty_rate = degradation(&faulty, 0.5, 300, 9);
        assert!(
            faulty_rate < healthy_rate,
            "phantom flood must displace real messages: {faulty_rate} vs {healthy_rate}"
        );
    }

    #[test]
    fn stuck_invalid_degrades_proportionally() {
        let healthy = switch();
        let fault = ChipFault {
            stage: 0,
            chip: 2,
            mode: FaultMode::StuckInvalid,
        };
        let faulty = FaultySwitch::new(healthy.staged(), vec![fault]);
        let rate = degradation(&faulty, 0.5, 400, 11);
        // One of eight first-stage chips dead: expect roughly 7/8 of
        // healthy delivery under light-to-moderate load.
        assert!(rate > 0.6 && rate < 0.98, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "missing chip")]
    fn fault_location_is_validated() {
        let healthy = switch();
        FaultySwitch::new(
            healthy.staged(),
            vec![ChipFault {
                stage: 0,
                chip: 99,
                mode: FaultMode::StuckInvalid,
            }],
        );
    }
}
