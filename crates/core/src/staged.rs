//! A generic multichip switch engine.
//!
//! Every switch in the paper has the same shape: *stages* of identical
//! single-chip hyperconcentrators joined by *fixed wiring* (crossbars in the
//! 2-D layouts, stack junctions in the 3-D packagings), with the switch
//! outputs read off a subset of the last stage's wires. This module captures
//! that shape once, providing message-level routing, gate-level elaboration
//! to one flat [`netlist::Netlist`], and delay accounting; the concrete
//! switches of §§4–6 are thin constructors on top of it.

use std::sync::Arc;

use netlist::{Literal, Netlist};
use serde::{Deserialize, Serialize};

use crate::elab::{ElabCache, Elaboration};
use crate::faults::{FaultTaps, FaultableElab};
use crate::hyper::{ceil_lg, Hyperconcentrator, PAD_LEVELS};
use crate::spec::{ConcentratorKind, ConcentratorSwitch, Routing};

/// Where a chip input pin's signal comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PinSource {
    /// Wire `i` of the previous stage's output vector (or of the switch
    /// inputs, for the first stage).
    Prev(usize),
    /// A hardwired constant — the ±∞ padding of Columnsort steps 6–8.
    Const(bool),
}

/// What the chips in a stage do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageKind {
    /// p-by-p hyperconcentrator chips: stable compaction of valid pins to
    /// the lowest-numbered output pins.
    Compactor,
    /// Pass-through boards (the hardwired barrel shifters of Fig. 4): the
    /// permutation lives in the wiring; the chip adds only pad/mux delay.
    PassThrough,
}

/// One stage: `chip_count` identical chips of `chip_pins` pins each.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchStage {
    /// Human-readable stage role, e.g. `"sort columns"`.
    pub label: String,
    /// Chip behaviour.
    pub kind: StageKind,
    /// Chips in this stage.
    pub chip_count: usize,
    /// Data pins (inputs = outputs) per chip.
    pub chip_pins: usize,
    /// For chip `c` pin `p` (index `c*chip_pins + p`): its signal source.
    pub input_map: Vec<PinSource>,
    /// For chip `c` pin `p`: where its output lands in this stage's output
    /// vector, or `None` if the wire is dropped (padding removal).
    pub output_map: Vec<Option<usize>>,
    /// Length of this stage's output vector.
    pub out_len: usize,
}

impl SwitchStage {
    /// Gate delays a message incurs traversing one chip of this stage
    /// (logic plus I/O pads).
    pub fn chip_delay(&self) -> u32 {
        match self.kind {
            StageKind::Compactor => 2 * ceil_lg(self.chip_pins) + PAD_LEVELS,
            StageKind::PassThrough => crate::barrel::BARREL_LEVELS,
        }
    }

    fn validate(&self, prev_len: usize) {
        let total = self.chip_count * self.chip_pins;
        assert_eq!(
            self.input_map.len(),
            total,
            "{}: input map size",
            self.label
        );
        assert_eq!(
            self.output_map.len(),
            total,
            "{}: output map size",
            self.label
        );
        for src in &self.input_map {
            if let PinSource::Prev(i) = src {
                assert!(
                    *i < prev_len,
                    "{}: input reads wire {i} >= {prev_len}",
                    self.label
                );
            }
        }
        let mut seen = vec![false; self.out_len];
        for dst in self.output_map.iter().flatten() {
            assert!(
                *dst < self.out_len,
                "{}: output target out of range",
                self.label
            );
            assert!(!seen[*dst], "{}: duplicate output target {dst}", self.label);
            seen[*dst] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "{}: some output positions are undriven",
            self.label
        );
    }
}

/// A complete multichip switch: stages plus the output read-off.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagedSwitch {
    /// Descriptive name, e.g. `"Revsort switch"`.
    pub name: String,
    /// Input wire count `n`.
    pub n: usize,
    /// Output wire count `m`.
    pub m: usize,
    /// The guarantee this construction makes.
    pub kind: ConcentratorKind,
    /// The chip stages, in traversal order.
    pub stages: Vec<SwitchStage>,
    /// Positions in the last stage's output vector that are the switch's
    /// `m` outputs, in output order.
    pub output_positions: Vec<usize>,
    /// Lazily-built elaborations (netlist + compiled engine), shared by
    /// verification, search, simulation, and benches. Invisible to value
    /// semantics: ignored by equality, reset by clone.
    #[serde(skip)]
    cache: ElabCache,
}

/// A message slot traveling between stages during routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    valid: bool,
    /// Original switch input carrying this message; `None` for padding.
    source: Option<usize>,
}

impl StagedSwitch {
    /// Build and validate a staged switch.
    ///
    /// # Panics
    /// On any structural inconsistency (see [`StagedSwitch::validate`]).
    pub fn new(
        name: impl Into<String>,
        n: usize,
        m: usize,
        kind: ConcentratorKind,
        stages: Vec<SwitchStage>,
        output_positions: Vec<usize>,
    ) -> Self {
        let switch = StagedSwitch {
            name: name.into(),
            n,
            m,
            kind,
            stages,
            output_positions,
            cache: ElabCache::default(),
        };
        switch.validate();
        switch
    }

    /// Validate internal consistency (map sizes, ranges, disjointness).
    ///
    /// # Panics
    /// On any inconsistency; constructors call this before returning.
    pub fn validate(&self) {
        assert!(self.m <= self.n, "m must not exceed n");
        let mut len = self.n;
        for stage in &self.stages {
            stage.validate(len);
            len = stage.out_len;
        }
        let mut seen = vec![false; len];
        assert_eq!(
            self.output_positions.len(),
            self.m,
            "need m output positions"
        );
        for &pos in &self.output_positions {
            assert!(pos < len, "output position {pos} out of range");
            assert!(!seen[pos], "duplicate output position {pos}");
            seen[pos] = true;
        }
    }

    /// Total gate delays through the switch (sum of per-stage chip delays;
    /// inter-stage wiring is free).
    pub fn delay(&self) -> u32 {
        self.stages.iter().map(SwitchStage::chip_delay).sum()
    }

    /// Total chips across all stages.
    pub fn chip_count(&self) -> usize {
        self.stages.iter().map(|s| s.chip_count).sum()
    }

    /// The largest per-chip data pin count (`2p` for a p-pin-in, p-pin-out
    /// chip).
    pub fn max_data_pins_per_chip(&self) -> usize {
        self.stages
            .iter()
            .map(|s| 2 * s.chip_pins)
            .max()
            .unwrap_or(0)
    }

    /// Trace messages through the stages, returning the final wire vector
    /// as `(valid, source)` pairs. Exposed for layout renderers.
    pub fn trace(&self, valid: &[bool]) -> Vec<(bool, Option<usize>)> {
        assert_eq!(valid.len(), self.n, "valid bit vector must have length n");
        let mut wires: Vec<Slot> = valid
            .iter()
            .enumerate()
            .map(|(i, &v)| Slot {
                valid: v,
                source: v.then_some(i),
            })
            .collect();
        for stage in &self.stages {
            wires = self.run_stage(stage, &wires);
        }
        wires.into_iter().map(|s| (s.valid, s.source)).collect()
    }

    fn run_stage(&self, stage: &SwitchStage, prev: &[Slot]) -> Vec<Slot> {
        let pins = stage.chip_pins;
        let mut out = vec![
            Slot {
                valid: false,
                source: None
            };
            stage.out_len
        ];
        let mut chip_out: Vec<Slot> = Vec::with_capacity(pins);
        for chip in 0..stage.chip_count {
            let base = chip * pins;
            chip_out.clear();
            match stage.kind {
                StageKind::Compactor => {
                    // Stable compaction: valid slots first, in pin order.
                    for p in 0..pins {
                        let slot = match stage.input_map[base + p] {
                            PinSource::Prev(i) => prev[i],
                            PinSource::Const(v) => Slot {
                                valid: v,
                                source: None,
                            },
                        };
                        if slot.valid {
                            chip_out.push(slot);
                        }
                    }
                    chip_out.resize(
                        pins,
                        Slot {
                            valid: false,
                            source: None,
                        },
                    );
                }
                StageKind::PassThrough => {
                    for p in 0..pins {
                        let slot = match stage.input_map[base + p] {
                            PinSource::Prev(i) => prev[i],
                            PinSource::Const(v) => Slot {
                                valid: v,
                                source: None,
                            },
                        };
                        chip_out.push(slot);
                    }
                }
            }
            for (p, slot) in chip_out.iter().enumerate() {
                match stage.output_map[base + p] {
                    Some(dst) => out[dst] = *slot,
                    None => {
                        // Dropped wires may only carry padding, never a
                        // message that entered through a switch input.
                        assert!(
                            slot.source.is_none(),
                            "{}: dropped a real message from input {:?}",
                            stage.label,
                            slot.source
                        );
                    }
                }
            }
        }
        out
    }

    /// Elaborate the whole switch to one flat *data-path* netlist for one
    /// bit-serial time slice: inputs are the `n` valid bits followed by
    /// `n` data bits; outputs are the `m` output valid bits followed by
    /// the `m` data bits carried along the established electrical paths.
    ///
    /// Holding the valid bits constant across a frame makes repeated
    /// evaluation of this netlist cycle-for-cycle equivalent to the real
    /// hardware, where the paths are latched at setup. Padding constants
    /// (Columnsort steps 6–8) carry data 0.
    pub fn build_datapath_netlist(&self, with_pads: bool) -> Netlist {
        let mut nl = Netlist::new();
        let mut valid: Vec<Literal> = nl.inputs_n(self.n).into_iter().map(Literal::pos).collect();
        let mut data: Vec<Literal> = nl.inputs_n(self.n).into_iter().map(Literal::pos).collect();
        for stage in &self.stages {
            let pins = stage.chip_pins;
            let chip_netlist = match stage.kind {
                StageKind::Compactor => {
                    Some(Hyperconcentrator::new(pins).build_datapath_netlist(with_pads))
                }
                StageKind::PassThrough => None,
            };
            let mut next_valid: Vec<Option<Literal>> = vec![None; stage.out_len];
            let mut next_data: Vec<Option<Literal>> = vec![None; stage.out_len];
            for chip in 0..stage.chip_count {
                let base = chip * pins;
                let chip_valid_in: Vec<Literal> = (0..pins)
                    .map(|p| match stage.input_map[base + p] {
                        PinSource::Prev(i) => valid[i],
                        PinSource::Const(v) => nl.constant(v),
                    })
                    .collect();
                let chip_data_in: Vec<Literal> = (0..pins)
                    .map(|p| match stage.input_map[base + p] {
                        PinSource::Prev(i) => data[i],
                        // Padding messages carry no payload.
                        PinSource::Const(_) => nl.constant(false),
                    })
                    .collect();
                let (chip_valid_out, chip_data_out): (Vec<Literal>, Vec<Literal>) = match stage.kind
                {
                    StageKind::Compactor => {
                        let sub = chip_netlist
                            .as_ref()
                            .expect("compactor stages elaborate a chip");
                        let mut connections = chip_valid_in;
                        connections.extend(chip_data_in);
                        let outs = nl.import(sub, &connections);
                        let (v, d) = outs.split_at(pins);
                        (v.to_vec(), d.to_vec())
                    }
                    StageKind::PassThrough => {
                        let mut pad = |lits: Vec<Literal>| -> Vec<Literal> {
                            if with_pads {
                                lits.into_iter()
                                    .map(|l| {
                                        let mut lit = l;
                                        for _ in 0..crate::barrel::BARREL_LEVELS {
                                            lit = nl.buf(lit);
                                        }
                                        lit
                                    })
                                    .collect()
                            } else {
                                lits
                            }
                        };
                        let v = pad(chip_valid_in);
                        let d = pad(chip_data_in);
                        (v, d)
                    }
                };
                for p in 0..pins {
                    if let Some(dst) = stage.output_map[base + p] {
                        next_valid[dst] = Some(chip_valid_out[p]);
                        next_data[dst] = Some(chip_data_out[p]);
                    }
                }
            }
            valid = next_valid
                .into_iter()
                .map(|l| l.expect("validated stages drive every output"))
                .collect();
            data = next_data
                .into_iter()
                .map(|l| l.expect("validated stages drive every output"))
                .collect();
        }
        for &pos in &self.output_positions {
            nl.mark_output(valid[pos]);
        }
        for &pos in &self.output_positions {
            nl.mark_output(data[pos]);
        }
        nl
    }

    /// Elaborate the no-pads datapath with an explicit `Buf` *tap* on every
    /// chip output pin (valid and data rails), recording the tap wires per
    /// `(stage, chip, pin)`. Faults compiled onto the tap wires cut in at
    /// exactly the chip package boundary — including pass-through boards,
    /// whose output literals would otherwise alias their inputs, and
    /// compactor chips whose `import` returns inverted literals.
    ///
    /// Tap bufs change gate counts and depth, so this flavor is only used
    /// for fault injection; healthy evaluation keeps using
    /// [`StagedSwitch::build_datapath_netlist`].
    pub fn build_faultable_datapath(&self) -> (Netlist, FaultTaps) {
        let mut nl = Netlist::new();
        let mut taps = FaultTaps {
            stages: Vec::with_capacity(self.stages.len()),
        };
        let mut valid: Vec<Literal> = nl.inputs_n(self.n).into_iter().map(Literal::pos).collect();
        let mut data: Vec<Literal> = nl.inputs_n(self.n).into_iter().map(Literal::pos).collect();
        for stage in &self.stages {
            let pins = stage.chip_pins;
            let chip_netlist = match stage.kind {
                StageKind::Compactor => {
                    Some(Hyperconcentrator::new(pins).build_datapath_netlist(false))
                }
                StageKind::PassThrough => None,
            };
            let mut stage_taps: Vec<Vec<(netlist::Wire, netlist::Wire)>> =
                Vec::with_capacity(stage.chip_count);
            let mut next_valid: Vec<Option<Literal>> = vec![None; stage.out_len];
            let mut next_data: Vec<Option<Literal>> = vec![None; stage.out_len];
            for chip in 0..stage.chip_count {
                let base = chip * pins;
                let chip_valid_in: Vec<Literal> = (0..pins)
                    .map(|p| match stage.input_map[base + p] {
                        PinSource::Prev(i) => valid[i],
                        PinSource::Const(v) => nl.constant(v),
                    })
                    .collect();
                let chip_data_in: Vec<Literal> = (0..pins)
                    .map(|p| match stage.input_map[base + p] {
                        PinSource::Prev(i) => data[i],
                        PinSource::Const(_) => nl.constant(false),
                    })
                    .collect();
                let (chip_valid_out, chip_data_out): (Vec<Literal>, Vec<Literal>) = match stage.kind
                {
                    StageKind::Compactor => {
                        let sub = chip_netlist
                            .as_ref()
                            .expect("compactor stages elaborate a chip");
                        let mut connections = chip_valid_in;
                        connections.extend(chip_data_in);
                        let outs = nl.import(sub, &connections);
                        let (v, d) = outs.split_at(pins);
                        (v.to_vec(), d.to_vec())
                    }
                    StageKind::PassThrough => (chip_valid_in, chip_data_in),
                };
                // The taps: one pad driver per output pin and rail, each a
                // freshly-driven wire faults can seize.
                let chip_valid_out: Vec<Literal> =
                    chip_valid_out.into_iter().map(|l| nl.buf(l)).collect();
                let chip_data_out: Vec<Literal> =
                    chip_data_out.into_iter().map(|l| nl.buf(l)).collect();
                stage_taps.push(
                    (0..pins)
                        .map(|p| (chip_valid_out[p].wire, chip_data_out[p].wire))
                        .collect(),
                );
                for p in 0..pins {
                    if let Some(dst) = stage.output_map[base + p] {
                        next_valid[dst] = Some(chip_valid_out[p]);
                        next_data[dst] = Some(chip_data_out[p]);
                    }
                }
            }
            taps.stages.push(stage_taps);
            valid = next_valid
                .into_iter()
                .map(|l| l.expect("validated stages drive every output"))
                .collect();
            data = next_data
                .into_iter()
                .map(|l| l.expect("validated stages drive every output"))
                .collect();
        }
        for &pos in &self.output_positions {
            nl.mark_output(valid[pos]);
        }
        for &pos in &self.output_positions {
            nl.mark_output(data[pos]);
        }
        (nl, taps)
    }

    /// Elaborate the whole switch to one flat control netlist (valid bits
    /// in, the `m` output valid bits out). `with_pads` adds per-chip pad
    /// levels so the netlist depth equals [`StagedSwitch::delay`].
    pub fn build_netlist(&self, with_pads: bool) -> Netlist {
        self.elaborate_control(with_pads, false)
    }

    /// Like [`StagedSwitch::build_netlist`], but marking the *entire*
    /// final-stage wire vector as outputs (the gate-level equivalent of
    /// [`StagedSwitch::trace`]'s valid bits) — the form nearsortedness
    /// measurement and ε-attacks evaluate.
    pub fn build_trace_netlist(&self, with_pads: bool) -> Netlist {
        self.elaborate_control(with_pads, true)
    }

    fn elaborate_control(&self, with_pads: bool, mark_all: bool) -> Netlist {
        let mut nl = Netlist::new();
        let mut wires: Vec<Literal> = nl.inputs_n(self.n).into_iter().map(Literal::pos).collect();
        for stage in &self.stages {
            let pins = stage.chip_pins;
            // One elaboration per stage; all chips in a stage are identical.
            let chip_netlist = match stage.kind {
                StageKind::Compactor => Some(Hyperconcentrator::new(pins).build_netlist(with_pads)),
                StageKind::PassThrough => None,
            };
            let mut next: Vec<Option<Literal>> = vec![None; stage.out_len];
            for chip in 0..stage.chip_count {
                let base = chip * pins;
                let chip_inputs: Vec<Literal> = (0..pins)
                    .map(|p| match stage.input_map[base + p] {
                        PinSource::Prev(i) => wires[i],
                        PinSource::Const(v) => nl.constant(v),
                    })
                    .collect();
                let chip_outputs: Vec<Literal> = match stage.kind {
                    StageKind::Compactor => {
                        let sub = chip_netlist
                            .as_ref()
                            .expect("compactor stages elaborate a chip");
                        nl.import(sub, &chip_inputs)
                    }
                    StageKind::PassThrough => {
                        if with_pads {
                            chip_inputs
                                .into_iter()
                                .map(|l| {
                                    let mut lit = l;
                                    for _ in 0..crate::barrel::BARREL_LEVELS {
                                        lit = nl.buf(lit);
                                    }
                                    lit
                                })
                                .collect()
                        } else {
                            chip_inputs
                        }
                    }
                };
                for (p, lit) in chip_outputs.iter().enumerate() {
                    if let Some(dst) = stage.output_map[base + p] {
                        next[dst] = Some(*lit);
                    }
                }
            }
            wires = next
                .into_iter()
                .map(|l| l.expect("validated stages drive every output"))
                .collect();
        }
        if mark_all {
            for &lit in &wires {
                nl.mark_output(lit);
            }
        } else {
            for &pos in &self.output_positions {
                nl.mark_output(wires[pos]);
            }
        }
        nl
    }

    /// The cached control elaboration (netlist + compiled engine); built on
    /// first use, shared thereafter. See [`crate::elab`].
    pub fn control_logic(&self, with_pads: bool) -> Arc<Elaboration> {
        self.cache
            .control(with_pads, || self.build_netlist(with_pads))
    }

    /// The cached datapath elaboration (netlist + compiled engine).
    pub fn datapath_logic(&self, with_pads: bool) -> Arc<Elaboration> {
        self.cache
            .datapath(with_pads, || self.build_datapath_netlist(with_pads))
    }

    /// The cached full-trace elaboration (netlist + compiled engine).
    pub fn trace_logic(&self, with_pads: bool) -> Arc<Elaboration> {
        self.cache
            .trace(with_pads, || self.build_trace_netlist(with_pads))
    }

    /// The cached *faultable* datapath elaboration (netlist + compiled
    /// engine + chip-output tap map). The cache holds only the healthy
    /// base; per-fault-set overlays are derived from it with
    /// [`FaultableElab::compile_faulted`] and owned by the caller, so
    /// injecting faults never pollutes the shared slots.
    pub fn faultable_logic(&self) -> Arc<FaultableElab> {
        self.cache.faultable(|| {
            let (netlist, taps) = self.build_faultable_datapath();
            let compiled = netlist.compile();
            FaultableElab {
                netlist,
                compiled,
                taps,
            }
        })
    }
}

impl ConcentratorSwitch for StagedSwitch {
    fn inputs(&self) -> usize {
        self.n
    }

    fn outputs(&self) -> usize {
        self.m
    }

    fn kind(&self) -> ConcentratorKind {
        self.kind
    }

    fn route(&self, valid: &[bool]) -> Routing {
        let final_wires = self.trace(valid);
        let mut assignment = vec![None; self.n];
        for (out_idx, &pos) in self.output_positions.iter().enumerate() {
            let (v, source) = final_wires[pos];
            if v {
                if let Some(src) = source {
                    assignment[src] = Some(out_idx);
                }
            }
        }
        Routing::from_assignment(assignment, self.m)
    }
}

/// Axis a sorting stage operates along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// One chip per matrix column; pin `p` is row `p`.
    Columns,
    /// One chip per matrix row; pin `p` is column `p`.
    Rows,
}

/// Build a sorting stage over an r×c matrix held in row-major order on the
/// inter-stage wires.
///
/// * `pre_perm`, if given, is wiring applied *before* the chips: the
///   element at matrix position `i` moves to position `pre_perm[i]`.
/// * `post_perm` likewise permutes the stage's outputs back into row-major
///   matrix order.
///
/// Compactor chips put valid bits at low pin numbers, so a plain column
/// stage sorts 1s to the top and a plain row stage sorts 1s to the left —
/// the paper's nonincreasing convention. Reversed directions (Shearsort's
/// snake) are expressed with row-reversal permutations.
pub fn sort_stage(
    rows: usize,
    cols: usize,
    axis: Axis,
    pre_perm: Option<&[usize]>,
    post_perm: Option<&[usize]>,
    label: impl Into<String>,
) -> SwitchStage {
    let len = rows * cols;
    let inv_pre = pre_perm.map(meshsort::invert);
    if let Some(p) = pre_perm {
        assert_eq!(p.len(), len, "pre_perm length mismatch");
    }
    if let Some(p) = post_perm {
        assert_eq!(p.len(), len, "post_perm length mismatch");
    }
    let (chip_count, chip_pins) = match axis {
        Axis::Columns => (cols, rows),
        Axis::Rows => (rows, cols),
    };
    let matrix_pos = |chip: usize, pin: usize| -> usize {
        match axis {
            Axis::Columns => pin * cols + chip,
            Axis::Rows => chip * cols + pin,
        }
    };
    let mut input_map = Vec::with_capacity(len);
    let mut output_map = Vec::with_capacity(len);
    for chip in 0..chip_count {
        for pin in 0..chip_pins {
            let pos = matrix_pos(chip, pin);
            let src = match &inv_pre {
                Some(inv) => inv[pos],
                None => pos,
            };
            input_map.push(PinSource::Prev(src));
            let dst = match post_perm {
                Some(p) => p[pos],
                None => pos,
            };
            output_map.push(Some(dst));
        }
    }
    SwitchStage {
        label: label.into(),
        kind: StageKind::Compactor,
        chip_count,
        chip_pins,
        input_map,
        output_map,
        out_len: len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshsort::{transpose_permutation, Grid, SortOrder};

    fn bits_of(pattern: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (pattern >> i) & 1 == 1).collect()
    }

    /// A single column-sort stage must behave exactly like sorting the
    /// columns of the matrix.
    #[test]
    fn column_stage_equals_grid_column_sort() {
        let (rows, cols) = (4, 3);
        let stage = sort_stage(rows, cols, Axis::Columns, None, None, "cols");
        let switch = StagedSwitch::new(
            "one column stage",
            rows * cols,
            rows * cols,
            ConcentratorKind::Partial { alpha: 1.0 },
            vec![stage],
            (0..rows * cols).collect(),
        );
        for pattern in 0u64..(1 << 12) {
            let valid = bits_of(pattern, 12);
            let traced = switch.trace(&valid);
            let mut grid = Grid::from_row_major(rows, cols, valid.clone());
            grid.sort_columns(SortOrder::Descending);
            let got: Vec<bool> = traced.iter().map(|&(v, _)| v).collect();
            assert_eq!(&got, grid.as_row_major(), "pattern {pattern:#x}");
        }
    }

    #[test]
    fn row_stage_equals_grid_row_sort() {
        let (rows, cols) = (3, 4);
        let stage = sort_stage(rows, cols, Axis::Rows, None, None, "rows");
        let switch = StagedSwitch::new(
            "one row stage",
            12,
            12,
            ConcentratorKind::Partial { alpha: 1.0 },
            vec![stage],
            (0..12).collect(),
        );
        for pattern in 0u64..(1 << 12) {
            let valid = bits_of(pattern, 12);
            let traced = switch.trace(&valid);
            let mut grid = Grid::from_row_major(rows, cols, valid.clone());
            grid.sort_rows(SortOrder::Descending);
            let got: Vec<bool> = traced.iter().map(|&(v, _)| v).collect();
            assert_eq!(&got, grid.as_row_major(), "pattern {pattern:#x}");
        }
    }

    #[test]
    fn pre_perm_is_applied_before_sorting() {
        // Transpose then sort columns == sort rows of the original, read
        // transposed.
        let side = 4;
        let perm = transpose_permutation(side, side);
        let stage = sort_stage(side, side, Axis::Columns, Some(&perm), None, "t+cols");
        let switch = StagedSwitch::new(
            "transpose then column sort",
            16,
            16,
            ConcentratorKind::Partial { alpha: 1.0 },
            vec![stage],
            (0..16).collect(),
        );
        for pattern in [0x0F0Fu64, 0xBEEF, 0x1234] {
            let valid = bits_of(pattern, 16);
            let traced: Vec<bool> = switch.trace(&valid).iter().map(|&(v, _)| v).collect();
            let grid = Grid::from_row_major(side, side, valid.clone());
            let mut transposed = grid.transposed();
            transposed.sort_columns(SortOrder::Descending);
            assert_eq!(&traced, transposed.as_row_major(), "pattern {pattern:#x}");
        }
    }

    #[test]
    fn netlist_matches_trace() {
        let (rows, cols) = (4, 2);
        let stage1 = sort_stage(rows, cols, Axis::Columns, None, None, "cols");
        let stage2 = sort_stage(rows, cols, Axis::Rows, None, None, "rows");
        let switch = StagedSwitch::new(
            "two stages",
            8,
            8,
            ConcentratorKind::Partial { alpha: 1.0 },
            vec![stage1, stage2],
            (0..8).collect(),
        );
        let nl = switch.build_netlist(false);
        for pattern in 0u64..256 {
            let valid = bits_of(pattern, 8);
            let traced: Vec<bool> = switch.trace(&valid).iter().map(|&(v, _)| v).collect();
            assert_eq!(nl.eval(&valid), traced, "pattern {pattern:#x}");
        }
    }

    #[test]
    fn delay_sums_stage_chip_delays() {
        let stage1 = sort_stage(4, 4, Axis::Columns, None, None, "cols");
        let stage2 = sort_stage(4, 4, Axis::Rows, None, None, "rows");
        let switch = StagedSwitch::new(
            "delay",
            16,
            16,
            ConcentratorKind::Partial { alpha: 1.0 },
            vec![stage1, stage2],
            (0..16).collect(),
        );
        // Each 4-pin compactor chip: 2*2 logic + 2 pads = 6.
        assert_eq!(switch.delay(), 12);
        let nl = switch.build_netlist(true);
        assert_eq!(nl.depth(), 12);
    }

    #[test]
    #[should_panic(expected = "undriven")]
    fn validate_catches_undriven_outputs() {
        let mut stage = sort_stage(2, 2, Axis::Columns, None, None, "bad");
        stage.output_map[0] = None;
        let _ = StagedSwitch::new(
            "bad",
            4,
            4,
            ConcentratorKind::Partial { alpha: 1.0 },
            vec![stage],
            (0..4).collect(),
        );
    }

    #[test]
    fn datapath_netlist_carries_message_identity() {
        // Stream 4-bit source ids through the multichip data path; the id
        // arriving at each output must name the input route() assigned.
        let (rows, cols) = (4usize, 4usize);
        let n = rows * cols;
        let stage1 = sort_stage(rows, cols, Axis::Columns, None, None, "cols");
        let stage2 = sort_stage(rows, cols, Axis::Rows, None, None, "rows");
        let switch = StagedSwitch::new(
            "datapath",
            n,
            n,
            ConcentratorKind::Partial { alpha: 1.0 },
            vec![stage1, stage2],
            (0..n).collect(),
        );
        let nl = switch.build_datapath_netlist(false);
        for pattern in (0u64..(1 << 16)).step_by(311) {
            let valid: Vec<bool> = (0..n).map(|i| (pattern >> i) & 1 == 1).collect();
            let routing = switch.route(&valid);
            // One evaluation per id bit.
            let mut received_ids = vec![0usize; n];
            for bit in 0..4 {
                let mut inputs = valid.clone();
                inputs.extend((0..n).map(|i| valid[i] && (i >> bit) & 1 == 1));
                let out = nl.eval(&inputs);
                let (_vout, dout) = out.split_at(n);
                for (slot, &d) in dout.iter().enumerate() {
                    if d {
                        received_ids[slot] |= 1 << bit;
                    }
                }
            }
            for (input, &assigned) in routing.assignment.iter().enumerate() {
                if let Some(out) = assigned {
                    // Id 0 is ambiguous with "no data"; check valid first.
                    if input != 0 {
                        assert_eq!(
                            received_ids[out], input,
                            "pattern {pattern:#x}: output {out} got wrong message"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn datapath_depth_matches_control_netlist() {
        let stage = sort_stage(4, 2, Axis::Columns, None, None, "cols");
        let switch = StagedSwitch::new(
            "depth",
            8,
            8,
            ConcentratorKind::Partial { alpha: 1.0 },
            vec![stage],
            (0..8).collect(),
        );
        assert_eq!(
            switch.build_datapath_netlist(true).depth(),
            switch.build_netlist(true).depth()
        );
    }

    #[test]
    fn routing_tracks_message_sources() {
        let stage = sort_stage(4, 1, Axis::Columns, None, None, "col");
        let switch = StagedSwitch::new(
            "4-to-2",
            4,
            2,
            ConcentratorKind::Partial { alpha: 1.0 },
            vec![stage],
            vec![0, 1],
        );
        let routing = switch.route(&[false, true, false, true]);
        assert_eq!(routing.assignment, vec![None, Some(0), None, Some(1)]);
        let routing = switch.route(&[true, true, true, false]);
        // Three messages, two outputs: exactly two delivered, in order.
        assert_eq!(routing.assignment, vec![Some(0), Some(1), None, None]);
    }
}
