//! Concentrator switches: the primary contribution of Cormen's *Efficient
//! Multichip Partial Concentrator Switches* (MIT-LCS-TM-322, 1987).
//!
//! A **perfect concentrator switch** routes as many of its `k` incoming
//! messages as possible onto `m ≤ n` output wires; a **hyperconcentrator**
//! routes any `k` valid inputs to its *first* `k` outputs; an
//! **(n, m, α) partial concentrator** guarantees full routing only up to
//! `αm` messages, in exchange for dramatically cheaper multichip
//! realizations.
//!
//! This crate provides:
//!
//! * [`hyper`] — the single-chip n-by-n hyperconcentrator building block
//!   (Cormen–Leiserson 1986): a stable compactor with exactly `2⌈lg n⌉`
//!   gate delays and `Θ(n²)` gates, both as a fast functional model and as
//!   a [`netlist::Netlist`];
//! * [`staged`] — a generic multichip switch engine: stages of identical
//!   chips joined by fixed wiring permutations, with message-level routing,
//!   gate-level elaboration, and delay accounting;
//! * [`revsort_switch`] — the three-stage `(n, m, 1 − O(n^{3/4}/m))`
//!   switch of §4 (Theorem 3), simulating Algorithm 1 of Revsort;
//! * [`columnsort_switch`] — the two-stage `(n, m, 1 − (s−1)²/m)` switch
//!   of §5 (Theorem 4), simulating Columnsort steps 1–3;
//! * [`full_revsort`] / [`full_columnsort`] — the §6 multichip
//!   *hyper*concentrators that simulate the complete sorting algorithms;
//! * [`barrel`] — the hardwired barrel-shifter boards of Figure 4;
//! * [`packaging`] — chips/boards/stacks/volume resource accounting
//!   reproducing Table 1 and Figures 4, 7, 8;
//! * [`spec`] — the switch traits and mechanical verifiers for the
//!   concentration properties.

pub mod barrel;
pub mod cellular;
pub mod clock;
pub mod columnsort_switch;
pub mod elab;
pub mod faults;
pub mod full_columnsort;
pub mod full_revsort;
pub mod geometry;
pub mod hyper;
pub mod layout;
pub mod packaging;
pub mod prefix_butterfly;
pub mod revsort_switch;
pub mod search;
pub mod spec;
pub mod staged;
pub mod timing;
pub mod verify;

pub use cellular::CellularCompactor;
pub use clock::{Clock, VirtualClock, WallClock};
pub use columnsort_switch::ColumnsortSwitch;
pub use elab::Elaboration;
pub use full_columnsort::FullColumnsortHyperconcentrator;
pub use full_revsort::FullRevsortHyperconcentrator;
pub use hyper::Hyperconcentrator;
pub use prefix_butterfly::PrefixButterflyHyperconcentrator;
pub use revsort_switch::RevsortSwitch;
pub use spec::{ConcentratorKind, ConcentratorSwitch, Routing};
pub use staged::{StagedSwitch, SwitchStage};
