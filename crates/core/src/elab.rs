//! Shared elaboration cache: netlist + compiled engine, built once per
//! switch instance.
//!
//! Elaborating a multichip switch to a flat [`Netlist`] and compiling it
//! with [`Netlist::compile`] are both `O(gates)` — cheap next to the
//! millions of evaluations a verification campaign performs, but wasteful
//! to repeat per campaign. Verification, adversarial search, frame
//! simulation, and the benches all want the *same* three artifacts:
//!
//! * the **control** netlist (valid bits in → the `m` output valid bits),
//! * the **datapath** netlist (valid + data bits in → output valid + data),
//! * the **trace** netlist (valid bits in → the *entire* final-stage wire
//!   vector, for nearsortedness measurement).
//!
//! [`ElabCache`] holds all three (in both pad flavors) behind [`OnceLock`]s
//! inside every [`crate::StagedSwitch`], so the first consumer pays the
//! elaboration cost and everyone after shares one [`Arc`]. The cache is
//! invisible to the switch's value semantics: clones start empty and
//! equality ignores it.

use std::sync::{Arc, OnceLock};

use netlist::{CompiledNetlist, Netlist};

use crate::faults::FaultableElab;

/// One elaboration product: the flat netlist and its compiled form.
#[derive(Debug, Clone)]
pub struct Elaboration {
    /// The flat gate-level netlist.
    pub netlist: Netlist,
    /// The levelized, arena-flattened batch evaluator for it.
    pub compiled: CompiledNetlist,
}

impl Elaboration {
    /// Compile `netlist` and pair the two.
    pub fn new(netlist: Netlist) -> Self {
        let compiled = netlist.compile();
        Elaboration { netlist, compiled }
    }
}

type Slot = OnceLock<Arc<Elaboration>>;

/// Lazily-built elaborations of one switch, keyed by flavor and by the
/// `with_pads` flag (index `with_pads as usize`).
#[derive(Default)]
pub struct ElabCache {
    control: [Slot; 2],
    datapath: [Slot; 2],
    trace: [Slot; 2],
    /// The healthy faultable-datapath base (chip-output taps, no pads).
    /// Per-fault-set overlays are derived from this, never stored here.
    faultable: OnceLock<Arc<FaultableElab>>,
}

impl ElabCache {
    /// The cached control elaboration, building via `make` on first use.
    pub fn control(&self, with_pads: bool, make: impl FnOnce() -> Netlist) -> Arc<Elaboration> {
        Self::get(&self.control[with_pads as usize], make)
    }

    /// The cached datapath elaboration, building via `make` on first use.
    pub fn datapath(&self, with_pads: bool, make: impl FnOnce() -> Netlist) -> Arc<Elaboration> {
        Self::get(&self.datapath[with_pads as usize], make)
    }

    /// The cached full-trace elaboration, building via `make` on first use.
    pub fn trace(&self, with_pads: bool, make: impl FnOnce() -> Netlist) -> Arc<Elaboration> {
        Self::get(&self.trace[with_pads as usize], make)
    }

    /// The cached faultable-datapath elaboration, building on first use.
    pub fn faultable(&self, make: impl FnOnce() -> FaultableElab) -> Arc<FaultableElab> {
        self.faultable.get_or_init(|| Arc::new(make())).clone()
    }

    fn get(slot: &Slot, make: impl FnOnce() -> Netlist) -> Arc<Elaboration> {
        slot.get_or_init(|| Arc::new(Elaboration::new(make())))
            .clone()
    }
}

/// Caches are identity-free scratch state: a cloned switch starts cold.
impl Clone for ElabCache {
    fn clone(&self) -> Self {
        ElabCache::default()
    }
}

/// Caches never participate in switch equality.
impl PartialEq for ElabCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl std::fmt::Debug for ElabCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = |slots: &[Slot; 2]| {
            [slots[0].get().is_some(), slots[1].get().is_some()]
                .iter()
                .filter(|&&b| b)
                .count()
        };
        write!(
            f,
            "ElabCache {{ control: {}/2, datapath: {}/2, trace: {}/2, faultable: {} }}",
            state(&self.control),
            state(&self.datapath),
            state(&self.trace),
            self.faultable.get().is_some()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let g = nl.and([a, b]);
        nl.mark_output(g);
        nl
    }

    #[test]
    fn cache_builds_once_and_shares() {
        let cache = ElabCache::default();
        let mut builds = 0usize;
        let first = cache.control(false, || {
            builds += 1;
            tiny()
        });
        let again = cache.control(false, || {
            builds += 1;
            tiny()
        });
        assert_eq!(builds, 1, "second access must hit the cache");
        assert!(Arc::ptr_eq(&first, &again));
        // The other pad flavor is a distinct slot.
        let padded = cache.control(true, || {
            builds += 1;
            tiny()
        });
        assert_eq!(builds, 2);
        assert!(!Arc::ptr_eq(&first, &padded));
    }

    #[test]
    fn clone_starts_cold() {
        let cache = ElabCache::default();
        let _ = cache.control(false, tiny);
        let cloned = cache.clone();
        let mut built = false;
        let _ = cloned.control(false, || {
            built = true;
            tiny()
        });
        assert!(built, "cloned cache must rebuild");
    }

    #[test]
    fn equality_ignores_cache_state() {
        let a = ElabCache::default();
        let b = ElabCache::default();
        let _ = a.control(false, tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn elaboration_pairs_netlist_and_compiled() {
        let e = Elaboration::new(tiny());
        assert_eq!(e.netlist.gate_count(), e.compiled.gate_count());
        assert_eq!(e.compiled.eval_word(&[!0, 0]), vec![0]);
        assert_eq!(e.compiled.eval_word(&[!0, !0]), vec![!0]);
    }
}
