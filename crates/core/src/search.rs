//! Adversarial search for worst-case valid-bit patterns.
//!
//! Random sampling under-estimates worst cases: the patterns that maximize
//! a nearsorter's dirty window are rare and structured. This module runs a
//! seeded stochastic hill climb (bit-flip neighborhood with restarts) on
//! any pattern objective — used by the theorem experiments to push the
//! measured ε toward the proven bound, and by tests to confirm the bounds
//! survive directed attack, not just random sampling.

use netlist::{BitMatrix, WORD_BITS};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::spec::ConcentratorSwitch;
use crate::staged::StagedSwitch;
use crate::verify::SplitMix64;

/// Result of a hill-climb campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchReport {
    /// The best objective value found.
    pub best_score: usize,
    /// A pattern achieving it.
    pub best_pattern: Vec<bool>,
    /// Objective evaluations performed.
    pub evaluations: usize,
}

/// Maximize `objective` over valid-bit patterns of length `n` by
/// first-improvement hill climbing with `restarts` random starts and up to
/// `steps` bit flips per start. Deterministic for a given seed; restarts
/// run in parallel.
pub fn hill_climb<F>(
    n: usize,
    restarts: usize,
    steps: usize,
    seed: u64,
    objective: F,
) -> SearchReport
where
    F: Fn(&[bool]) -> usize + Sync,
{
    let results: Vec<(usize, Vec<bool>, usize)> = (0..restarts)
        .into_par_iter()
        .map(|restart| {
            let mut rng = SplitMix64(seed ^ (restart as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
            let density = 0.1 + 0.8 * (restart as f64 / restarts.max(1) as f64);
            let mut pattern = rng.valid_bits(n, density);
            let mut score = objective(&pattern);
            let mut evaluations = 1usize;
            for _ in 0..steps {
                let flip = (rng.next_u64() % n as u64) as usize;
                pattern[flip] = !pattern[flip];
                let candidate = objective(&pattern);
                evaluations += 1;
                if candidate >= score {
                    score = candidate; // accept ties to drift across plateaus
                } else {
                    pattern[flip] = !pattern[flip]; // revert
                }
            }
            (score, pattern, evaluations)
        })
        .collect();
    let evaluations = results.iter().map(|r| r.2).sum();
    let (best_score, best_pattern, _) = results
        .into_iter()
        .max_by_key(|r| r.0)
        .expect("at least one restart");
    SearchReport {
        best_score,
        best_pattern,
        evaluations,
    }
}

/// Maximize a *batched* objective by steepest-ascent hill climbing: each
/// round packs up to 64 single-bit-flip neighbors of the current pattern
/// into the lanes of one [`BitMatrix`] and scores them all with a single
/// call. Built for compiled-netlist objectives, where one
/// [`CompiledNetlist::eval_matrix`](netlist::CompiledNetlist::eval_matrix)
/// sweep prices the whole neighborhood at roughly the cost the scalar
/// interpreter charges for one pattern.
///
/// The objective receives an n-row matrix (one row per input wire, one
/// lane per candidate) and must return one score per lane. Deterministic
/// for a given seed.
pub fn hill_climb_block<F>(
    n: usize,
    restarts: usize,
    rounds: usize,
    seed: u64,
    objective: F,
) -> SearchReport
where
    F: Fn(&BitMatrix) -> Vec<usize>,
{
    assert!(n > 0 && restarts > 0, "need a non-trivial search space");
    let mut best_score = 0usize;
    let mut best_pattern = Vec::new();
    let mut evaluations = 0usize;
    let mut positions: Vec<usize> = (0..n).collect();
    for restart in 0..restarts {
        let mut rng = SplitMix64(seed ^ (restart as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
        let density = 0.1 + 0.8 * (restart as f64 / restarts.max(1) as f64);
        let mut pattern = rng.valid_bits(n, density);
        let start = BitMatrix::from_fn(n, 1, |row, _| pattern[row]);
        let mut score = objective(&start)[0];
        evaluations += 1;
        let lanes = n.min(WORD_BITS);
        for _ in 0..rounds {
            // Sample `lanes` distinct flip positions (partial Fisher-Yates).
            for i in 0..lanes {
                let j = i + (rng.next_u64() % (n - i) as u64) as usize;
                positions.swap(i, j);
            }
            let flips = &positions[..lanes];
            let neighbors =
                BitMatrix::from_fn(n, lanes, |row, lane| pattern[row] ^ (flips[lane] == row));
            let scores = objective(&neighbors);
            assert_eq!(scores.len(), lanes, "objective must score every lane");
            evaluations += lanes;
            let (lane, &candidate) = scores
                .iter()
                .enumerate()
                .max_by_key(|&(_, &s)| s)
                .expect("at least one lane");
            if candidate >= score {
                score = candidate; // accept ties to drift across plateaus
                pattern[flips[lane]] = !pattern[flips[lane]];
            }
        }
        if restart == 0 || score > best_score {
            best_score = score;
            best_pattern = pattern;
        }
    }
    SearchReport {
        best_score,
        best_pattern,
        evaluations,
    }
}

/// Directed attack on a staged switch's nearsortedness: maximize the
/// dirty-window ε of the final-stage wire vector, scoring 64 candidate
/// patterns per compiled sweep through the switch's cached trace netlist.
pub fn epsilon_attack(
    switch: &StagedSwitch,
    restarts: usize,
    rounds: usize,
    seed: u64,
) -> SearchReport {
    let elab = switch.trace_logic(false);
    hill_climb_block(switch.n, restarts, rounds, seed, |patterns| {
        let out = elab.compiled.eval_matrix(patterns);
        (0..patterns.vectors())
            .map(|lane| {
                meshsort::nearsort_epsilon(&out.column(lane), meshsort::SortOrder::Descending)
            })
            .collect()
    })
}

/// Directed attack on a staged switch's concentration guarantee: maximize
/// messages *lost* among at-most-capacity offered loads, scoring 64
/// candidates per compiled sweep through the cached datapath netlist. A
/// correct switch pins this objective at zero.
pub fn deficiency_attack(
    switch: &StagedSwitch,
    restarts: usize,
    rounds: usize,
    seed: u64,
) -> SearchReport {
    let elab = switch.datapath_logic(false);
    let capacity = switch.guaranteed_capacity();
    let (n, m) = (switch.n, switch.m);
    hill_climb_block(n, restarts, rounds, seed, |patterns| {
        // Feed the valid bits on both the valid and data rails, so an
        // output carries a real message iff valid_out ∧ data_out.
        let mut fed = BitMatrix::zeroed(2 * n, patterns.vectors());
        for row in 0..n {
            for w in 0..patterns.words_per_row() {
                let word = patterns.word(row, w);
                *fed.word_mut(row, w) = word;
                *fed.word_mut(n + row, w) = word;
            }
        }
        let out = elab.compiled.eval_matrix(&fed);
        (0..patterns.vectors())
            .map(|lane| {
                let k = (0..n).filter(|&r| patterns.get(r, lane)).count();
                if k > capacity {
                    return 0; // outside the guarantee's precondition
                }
                let delivered = (0..m)
                    .filter(|&o| out.get(o, lane) && out.get(m + o, lane))
                    .count();
                k - delivered
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revsort_switch::{RevsortLayout, RevsortSwitch};
    use crate::ColumnsortSwitch;
    use meshsort::{nearsort_epsilon, SortOrder};

    #[test]
    fn finds_the_all_ones_maximum_of_popcount() {
        let report = hill_climb(24, 4, 600, 1, |bits| bits.iter().filter(|&&b| b).count());
        assert_eq!(
            report.best_score, 24,
            "hill climb must solve the trivial objective"
        );
        assert!(report.evaluations > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let f = |bits: &[bool]| {
            bits.iter()
                .enumerate()
                .filter(|&(i, &b)| b && i % 3 == 0)
                .count()
        };
        let a = hill_climb(16, 3, 200, 9, f);
        let b = hill_climb(16, 3, 200, 9, f);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.best_pattern, b.best_pattern);
    }

    #[test]
    fn attack_on_columnsort_epsilon_stays_within_bound() {
        // Directed attack on the nearsorter; the proven bound must hold.
        let switch = ColumnsortSwitch::new(8, 4, 32);
        let report = hill_climb(32, 6, 400, 0xA77AC4, |valid| {
            let bits: Vec<bool> = switch
                .staged()
                .trace(valid)
                .iter()
                .map(|&(v, _)| v)
                .collect();
            nearsort_epsilon(&bits, SortOrder::Descending)
        });
        assert!(
            report.best_score <= switch.epsilon_bound(),
            "attack found ε = {} beyond the bound {}",
            report.best_score,
            switch.epsilon_bound()
        );
        // And it should do at least as well as a blind sample.
        assert!(report.best_score >= 1);
    }

    #[test]
    fn attack_on_revsort_deficiency_stays_within_guarantee() {
        let switch = RevsortSwitch::new(64, 48, RevsortLayout::TwoDee);
        let capacity = switch.guaranteed_capacity();
        // Objective: messages lost among the first `capacity` offered.
        let report = hill_climb(64, 6, 400, 0xDEF1C17, |valid| {
            let k = valid.iter().filter(|&&v| v).count();
            if k > capacity {
                return 0; // outside the guarantee's precondition
            }
            let routing = switch.route(valid);
            k - routing.routed()
        });
        assert_eq!(
            report.best_score, 0,
            "directed attack dropped a message under guaranteed capacity"
        );
    }

    #[test]
    fn block_climb_finds_the_all_ones_maximum_of_popcount() {
        let report = hill_climb_block(24, 4, 40, 1, |patterns| {
            (0..patterns.vectors())
                .map(|lane| (0..24).filter(|&r| patterns.get(r, lane)).count())
                .collect()
        });
        assert_eq!(
            report.best_score, 24,
            "batched climb must solve the trivial objective"
        );
        assert!(report.evaluations > 0);
    }

    #[test]
    fn block_climb_deterministic_for_fixed_seed() {
        let f = |patterns: &BitMatrix| -> Vec<usize> {
            (0..patterns.vectors())
                .map(|lane| {
                    (0..16)
                        .filter(|&r| patterns.get(r, lane) && r % 3 == 0)
                        .count()
                })
                .collect()
        };
        let a = hill_climb_block(16, 3, 30, 9, f);
        let b = hill_climb_block(16, 3, 30, 9, f);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.best_pattern, b.best_pattern);
    }

    #[test]
    fn compiled_epsilon_attack_stays_within_bound_and_bites() {
        let switch = ColumnsortSwitch::new(8, 4, 32);
        let report = epsilon_attack(switch.staged(), 4, 60, 0xA77AC4);
        assert!(
            report.best_score <= switch.epsilon_bound(),
            "attack found ε = {} beyond the bound {}",
            report.best_score,
            switch.epsilon_bound()
        );
        assert!(
            report.best_score >= 1,
            "attack should beat the all-sorted baseline"
        );
        // The batched score must agree with the scalar trace objective.
        let bits: Vec<bool> = switch
            .staged()
            .trace(&report.best_pattern)
            .iter()
            .map(|&(v, _)| v)
            .collect();
        assert_eq!(
            report.best_score,
            nearsort_epsilon(&bits, SortOrder::Descending)
        );
    }

    #[test]
    fn compiled_deficiency_attack_stays_at_zero() {
        let switch = RevsortSwitch::new(64, 48, RevsortLayout::TwoDee);
        let report = deficiency_attack(switch.staged(), 4, 60, 0xDEF1C17);
        assert_eq!(
            report.best_score, 0,
            "compiled attack dropped a message under guaranteed capacity"
        );
    }
}
