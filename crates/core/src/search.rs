//! Adversarial search for worst-case valid-bit patterns.
//!
//! Random sampling under-estimates worst cases: the patterns that maximize
//! a nearsorter's dirty window are rare and structured. This module runs a
//! seeded stochastic hill climb (bit-flip neighborhood with restarts) on
//! any pattern objective — used by the theorem experiments to push the
//! measured ε toward the proven bound, and by tests to confirm the bounds
//! survive directed attack, not just random sampling.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::verify::SplitMix64;

/// Result of a hill-climb campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchReport {
    /// The best objective value found.
    pub best_score: usize,
    /// A pattern achieving it.
    pub best_pattern: Vec<bool>,
    /// Objective evaluations performed.
    pub evaluations: usize,
}

/// Maximize `objective` over valid-bit patterns of length `n` by
/// first-improvement hill climbing with `restarts` random starts and up to
/// `steps` bit flips per start. Deterministic for a given seed; restarts
/// run in parallel.
pub fn hill_climb<F>(
    n: usize,
    restarts: usize,
    steps: usize,
    seed: u64,
    objective: F,
) -> SearchReport
where
    F: Fn(&[bool]) -> usize + Sync,
{
    let results: Vec<(usize, Vec<bool>, usize)> = (0..restarts)
        .into_par_iter()
        .map(|restart| {
            let mut rng =
                SplitMix64(seed ^ (restart as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
            let density = 0.1 + 0.8 * (restart as f64 / restarts.max(1) as f64);
            let mut pattern = rng.valid_bits(n, density);
            let mut score = objective(&pattern);
            let mut evaluations = 1usize;
            for _ in 0..steps {
                let flip = (rng.next_u64() % n as u64) as usize;
                pattern[flip] = !pattern[flip];
                let candidate = objective(&pattern);
                evaluations += 1;
                if candidate >= score {
                    score = candidate; // accept ties to drift across plateaus
                } else {
                    pattern[flip] = !pattern[flip]; // revert
                }
            }
            (score, pattern, evaluations)
        })
        .collect();
    let evaluations = results.iter().map(|r| r.2).sum();
    let (best_score, best_pattern, _) = results
        .into_iter()
        .max_by_key(|r| r.0)
        .expect("at least one restart");
    SearchReport { best_score, best_pattern, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revsort_switch::{RevsortLayout, RevsortSwitch};
    use crate::spec::ConcentratorSwitch;
    use crate::ColumnsortSwitch;
    use meshsort::{nearsort_epsilon, SortOrder};

    #[test]
    fn finds_the_all_ones_maximum_of_popcount() {
        let report = hill_climb(24, 4, 600, 1, |bits| {
            bits.iter().filter(|&&b| b).count()
        });
        assert_eq!(report.best_score, 24, "hill climb must solve the trivial objective");
        assert!(report.evaluations > 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let f = |bits: &[bool]| bits.iter().enumerate().filter(|&(i, &b)| b && i % 3 == 0).count();
        let a = hill_climb(16, 3, 200, 9, f);
        let b = hill_climb(16, 3, 200, 9, f);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.best_pattern, b.best_pattern);
    }

    #[test]
    fn attack_on_columnsort_epsilon_stays_within_bound() {
        // Directed attack on the nearsorter; the proven bound must hold.
        let switch = ColumnsortSwitch::new(8, 4, 32);
        let report = hill_climb(32, 6, 400, 0xA77AC4, |valid| {
            let bits: Vec<bool> =
                switch.staged().trace(valid).iter().map(|&(v, _)| v).collect();
            nearsort_epsilon(&bits, SortOrder::Descending)
        });
        assert!(
            report.best_score <= switch.epsilon_bound(),
            "attack found ε = {} beyond the bound {}",
            report.best_score,
            switch.epsilon_bound()
        );
        // And it should do at least as well as a blind sample.
        assert!(report.best_score >= 1);
    }

    #[test]
    fn attack_on_revsort_deficiency_stays_within_guarantee() {
        let switch = RevsortSwitch::new(64, 48, RevsortLayout::TwoDee);
        let capacity = switch.guaranteed_capacity();
        // Objective: messages lost among the first `capacity` offered.
        let report = hill_climb(64, 6, 400, 0xDEF1C17, |valid| {
            let k = valid.iter().filter(|&&v| v).count();
            if k > capacity {
                return 0; // outside the guarantee's precondition
            }
            let routing = switch.route(valid);
            k - routing.routed()
        });
        assert_eq!(
            report.best_score, 0,
            "directed attack dropped a message under guaranteed capacity"
        );
    }
}
