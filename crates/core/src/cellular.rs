//! A cellular compaction lattice — the "obvious" regular-layout
//! alternative to the Cormen–Leiserson hyperconcentrator, built as an
//! ablation baseline.
//!
//! The lattice is n stages of odd–even neighbor cells: in each stage a
//! message moves one wire toward wire 0 whenever that neighbor is vacant
//! (a bubble-compaction pass). Every cell is identical and talks only to
//! its neighbor — a layout even more regular than the 1986 chip — and n
//! stages suffice to compact any pattern. The price is **Θ(n) gate
//! delays** against the merge network's `2 lg n`, at the same `Θ(n²)`
//! cell count: exactly the trade that makes the 1986 design worth its
//! more elaborate wiring, quantified in `ablation_cellular`.

use netlist::{Literal, Netlist};
use serde::{Deserialize, Serialize};

use crate::spec::{ConcentratorKind, ConcentratorSwitch, Routing};

/// The odd–even cellular compaction lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellularCompactor {
    n: usize,
}

impl CellularCompactor {
    /// Build an n-wire lattice.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "lattice needs at least one wire");
        CellularCompactor { n }
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of odd–even stages needed to compact any pattern: `n`.
    pub fn stages(&self) -> usize {
        self.n
    }

    /// Functional model: run the lattice on valid bits, returning the
    /// per-wire occupancy after each full pass (for tests) — final state
    /// is the compaction.
    pub fn settle(&self, valid: &[bool]) -> Vec<bool> {
        assert_eq!(valid.len(), self.n);
        let mut wires = valid.to_vec();
        for stage in 0..self.stages() {
            let start = if stage % 2 == 0 { 1 } else { 2 };
            let mut i = start;
            while i < self.n {
                if wires[i] && !wires[i - 1] {
                    wires.swap(i, i - 1);
                }
                i += 2;
            }
        }
        wires
    }

    /// Gate-level netlist of the lattice: each cell is a 2×2 vacancy-
    /// controlled exchange (two levels per stage under the wide-gate
    /// convention — one AND plane, one OR plane).
    pub fn build_netlist(&self) -> Netlist {
        let mut nl = Netlist::new();
        let mut wires: Vec<Literal> = nl.inputs_n(self.n).into_iter().map(Literal::pos).collect();
        for stage in 0..self.stages() {
            let start = if stage % 2 == 0 { 1 } else { 2 };
            let mut next = wires.clone();
            let mut i = start;
            while i < self.n {
                let upper = wires[i - 1];
                let lower = wires[i];
                // upper' = upper OR lower (message falls into a vacancy);
                // lower' = upper AND lower (stays only if both occupied).
                next[i - 1] = nl.or([upper, lower]);
                next[i] = nl.and([upper, lower]);
                i += 2;
            }
            wires = next;
        }
        for lit in wires {
            nl.mark_output(lit);
        }
        nl
    }
}

impl ConcentratorSwitch for CellularCompactor {
    fn inputs(&self) -> usize {
        self.n
    }

    fn outputs(&self) -> usize {
        self.n
    }

    fn kind(&self) -> ConcentratorKind {
        ConcentratorKind::Hyperconcentrator
    }

    fn route(&self, valid: &[bool]) -> Routing {
        // The lattice preserves message order (it only exchanges a message
        // with a vacancy, never two messages), so routing is the stable
        // compaction.
        assert_eq!(valid.len(), self.n);
        let mut rank = 0usize;
        let assignment = valid
            .iter()
            .map(|&v| {
                if v {
                    rank += 1;
                    Some(rank - 1)
                } else {
                    None
                }
            })
            .collect();
        Routing::from_assignment(assignment, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyper::Hyperconcentrator;
    use crate::spec::check_concentration;

    fn bits_of(pattern: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (pattern >> i) & 1 == 1).collect()
    }

    #[test]
    fn settles_to_compaction_exhaustively() {
        for n in [1usize, 2, 5, 8, 12] {
            let lattice = CellularCompactor::new(n);
            let reference = Hyperconcentrator::new(n);
            for pattern in 0u64..(1u64 << n) {
                let valid = bits_of(pattern, n);
                assert_eq!(
                    lattice.settle(&valid),
                    reference.concentrate(&valid),
                    "n={n}, pattern {pattern:#x}"
                );
            }
        }
    }

    #[test]
    fn netlist_matches_settle_exhaustively() {
        for n in [2usize, 5, 8, 10] {
            let lattice = CellularCompactor::new(n);
            let nl = lattice.build_netlist();
            for pattern in 0u64..(1u64 << n) {
                let valid = bits_of(pattern, n);
                assert_eq!(
                    nl.eval(&valid),
                    lattice.settle(&valid),
                    "n={n} {pattern:#x}"
                );
            }
        }
    }

    #[test]
    fn lattice_is_a_hyperconcentrator() {
        let lattice = CellularCompactor::new(10);
        for pattern in 0u64..(1 << 10) {
            let valid = bits_of(pattern, 10);
            assert!(check_concentration(&lattice, &valid).is_empty());
        }
    }

    #[test]
    fn delay_is_linear_not_logarithmic() {
        // The ablation's point: same function, Θ(n) depth.
        let n = 64;
        let lattice_depth = CellularCompactor::new(n).build_netlist().depth();
        let merge_depth = Hyperconcentrator::new(n).build_netlist(false).depth();
        assert!(
            lattice_depth as usize >= n,
            "lattice depth {lattice_depth} < n"
        );
        assert_eq!(merge_depth, 12); // 2 lg 64
        assert!(lattice_depth > 5 * merge_depth);
    }

    #[test]
    fn worst_case_needs_about_n_stages() {
        // A message at wire n-1 with all others valid-then-invalid: the
        // single vacancy pattern needs ~n passes to percolate.
        let n = 16;
        let lattice = CellularCompactor::new(n);
        let mut valid = vec![false; n];
        valid[n - 1] = true;
        let settled = lattice.settle(&valid);
        assert!(settled[0], "lone message must reach wire 0");
        assert!(settled.iter().skip(1).all(|&v| !v));
    }
}
