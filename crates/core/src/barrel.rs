//! The w-bit barrel shifter boards of Figure 4.
//!
//! In the three-dimensional Revsort packaging, each stage-2 board follows
//! its hyperconcentrator chip with a √n-bit barrel shifter whose
//! `⌈lg √n⌉` control bits are *hardwired* to `rev(i)`: "since the barrel
//! shift amounts are hardwired and never change, the barrel shifters
//! introduce only a constant number of gate delays" (§4).

use netlist::{Literal, Netlist};
use serde::{Deserialize, Serialize};

/// Gate delays of one hardwired barrel-shifter traversal: input pad,
/// collapsed mux driver, output pad. The `O(1)` of Theorem 3's delay bound.
pub const BARREL_LEVELS: u32 = 3;

/// A w-bit right-rotating barrel shifter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Barrel {
    width: usize,
}

impl Barrel {
    /// Create a barrel shifter over `width` wires.
    ///
    /// # Panics
    /// If `width == 0` or not a power of two (the rotation stages shift by
    /// powers of two).
    pub fn new(width: usize) -> Self {
        assert!(
            width.is_power_of_two(),
            "barrel width must be a power of two"
        );
        Barrel { width }
    }

    /// Number of data wires.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of control bits: `⌈lg w⌉`.
    pub fn control_bits(&self) -> usize {
        self.width.trailing_zeros() as usize
    }

    /// Data pins of the packaged chip: `2w` data plus the control bits —
    /// the `2√n + ⌈(lg n)/2⌉` pins of Theorem 3.
    pub fn pins(&self) -> usize {
        2 * self.width + self.control_bits()
    }

    /// Functional model: rotate `data` right by `amount` (element at index
    /// `j` moves to index `(amount + j) mod w`).
    pub fn rotate<T: Clone>(&self, data: &[T], amount: usize) -> Vec<T> {
        assert_eq!(data.len(), self.width);
        let w = self.width;
        let amount = amount % w;
        (0..w).map(|i| data[(i + w - amount) % w].clone()).collect()
    }

    /// Build the generic gate-level barrel shifter: inputs are `w` data
    /// wires followed by `⌈lg w⌉` control wires (LSB first); outputs are
    /// the `w` data wires rotated right by the control value.
    ///
    /// Each of the `lg w` mux levels costs 2 gate delays (AND plane + OR
    /// plane), for `2⌈lg w⌉` total — this is what hardwiring the controls
    /// saves.
    pub fn build_netlist(&self) -> Netlist {
        let w = self.width;
        let mut nl = Netlist::new();
        let data: Vec<Literal> = nl.inputs_n(w).into_iter().map(Literal::pos).collect();
        let control: Vec<Literal> = nl
            .inputs_n(self.control_bits())
            .into_iter()
            .map(Literal::pos)
            .collect();
        let mut current = data;
        for (level, &ctl) in control.iter().enumerate() {
            let shift = 1usize << level;
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let stay = nl.and([current[i], ctl.complement()]);
                let moved = nl.and([current[(i + w - shift) % w], ctl]);
                next.push(nl.or([stay, moved]));
            }
            current = next;
        }
        for lit in current {
            nl.mark_output(lit);
        }
        nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_rotation_matches_definition() {
        let b = Barrel::new(4);
        assert_eq!(b.rotate(&[10, 11, 12, 13], 0), vec![10, 11, 12, 13]);
        assert_eq!(b.rotate(&[10, 11, 12, 13], 1), vec![13, 10, 11, 12]);
        assert_eq!(b.rotate(&[10, 11, 12, 13], 5), vec![13, 10, 11, 12]);
    }

    #[test]
    fn netlist_rotates_for_every_control_value() {
        let b = Barrel::new(8);
        let nl = b.build_netlist();
        for amount in 0..8usize {
            for pattern in [0b1010_1100u32, 0b0000_0001, 0b1111_0000] {
                let data: Vec<bool> = (0..8).map(|i| (pattern >> i) & 1 == 1).collect();
                let mut inputs = data.clone();
                for bit in 0..3 {
                    inputs.push((amount >> bit) & 1 == 1);
                }
                let got = nl.eval(&inputs);
                let expected = b.rotate(&data, amount);
                assert_eq!(got, expected, "amount {amount}, pattern {pattern:#b}");
            }
        }
    }

    #[test]
    fn generic_netlist_depth_is_two_lg_w() {
        let b = Barrel::new(16);
        assert_eq!(b.build_netlist().depth(), 8);
    }

    #[test]
    fn pin_count_matches_theorem3() {
        // 2√n + ⌈(lg n)/2⌉ data pins for the stage-2 boards with √n = 8.
        let b = Barrel::new(8);
        assert_eq!(b.pins(), 2 * 8 + 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_width() {
        Barrel::new(6);
    }
}
