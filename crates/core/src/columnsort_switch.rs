//! The Columnsort-based partial concentrator switch of §5 (Theorem 4).
//!
//! Two stages of r-by-r hyperconcentrator chips simulate Columnsort steps
//! 1–3 on the r×s valid-bit matrix: stage 1 sorts the columns, the
//! `RM⁻¹ ∘ CM` crossbar converts column-major to row-major order, and
//! stage 2 sorts the columns again. The outputs are the first `m` wires in
//! row-major order, giving an `(n, m, 1 − (s−1)²/m)` partial concentrator
//! with `Θ(n^β)` data pins per chip, `Θ(n^{1−β})` chips, volume
//! `Θ(n^{1+β})`, and `4β lg n + O(1)` gate delays for
//! `r = Θ(n^β)`, `1/2 ≤ β ≤ 1`.

use meshsort::{cm_to_rm_permutation, ColumnsortShape};
use serde::{Deserialize, Serialize};

use crate::spec::{ConcentratorKind, ConcentratorSwitch, Routing};
use crate::staged::{sort_stage, Axis, StagedSwitch};

/// The two-stage Columnsort-based partial concentrator switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnsortSwitch {
    inner: StagedSwitch,
    shape: ColumnsortShape,
}

impl ColumnsortSwitch {
    /// Build the switch over an r×s valid-bit matrix (`n = rs`) with
    /// `m ≤ n` outputs.
    ///
    /// # Panics
    /// If `s` does not divide `r` (§5's side condition) or `m` is out of
    /// range.
    pub fn new(rows: usize, cols: usize, m: usize) -> Self {
        let shape = ColumnsortShape::new(rows, cols);
        let n = shape.len();
        assert!(m > 0 && m <= n, "need 0 < m <= n");

        let wiring = cm_to_rm_permutation(rows, cols);
        let stages = vec![
            sort_stage(
                rows,
                cols,
                Axis::Columns,
                None,
                None,
                "stage 1: sort columns",
            ),
            sort_stage(
                rows,
                cols,
                Axis::Columns,
                Some(&wiring),
                None,
                "stage 2: CM->RM wiring, sort columns",
            ),
        ];

        let epsilon = shape.nearsort_bound();
        let alpha = (1.0 - epsilon as f64 / m as f64).max(0.0);
        let inner = StagedSwitch::new(
            format!("Columnsort switch (r={rows}, s={cols}, m={m})"),
            n,
            m,
            ConcentratorKind::Partial { alpha },
            stages,
            (0..m).collect(),
        );
        ColumnsortSwitch { inner, shape }
    }

    /// A square shape (`β = 1/2`): `r = s = √n`.
    pub fn square(n: usize, m: usize) -> Self {
        let side = crate::revsort_switch::integer_sqrt(n);
        assert_eq!(side * side, n, "square Columnsort switch requires square n");
        ColumnsortSwitch::new(side, side, m)
    }

    /// The underlying mesh shape.
    pub fn shape(&self) -> ColumnsortShape {
        self.shape
    }

    /// The nearsortedness guarantee of steps 1–3: `ε = (s−1)²`.
    pub fn epsilon_bound(&self) -> usize {
        self.shape.nearsort_bound()
    }

    /// The underlying staged switch.
    pub fn staged(&self) -> &StagedSwitch {
        &self.inner
    }

    /// Gate delays: `2 × (2⌈lg r⌉ + pads) = 4β lg n + O(1)`.
    pub fn delay(&self) -> u32 {
        self.inner.delay()
    }
}

impl ConcentratorSwitch for ColumnsortSwitch {
    fn inputs(&self) -> usize {
        self.inner.n
    }

    fn outputs(&self) -> usize {
        self.inner.m
    }

    fn kind(&self) -> ConcentratorKind {
        self.inner.kind
    }

    fn route(&self, valid: &[bool]) -> Routing {
        self.inner.route(valid)
    }

    /// Exact integer capacity `m − (s−1)²` (avoids the default's f64
    /// round trip through α, which can under-report by one).
    fn guaranteed_capacity(&self) -> usize {
        self.inner.m.saturating_sub(self.epsilon_bound())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_concentration;
    use meshsort::{columnsort_steps123, nearsort_epsilon, Grid, SortOrder};

    fn bits_of(pattern: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (pattern >> i) & 1 == 1).collect()
    }

    #[test]
    fn trace_equals_columnsort_steps123_exhaustively_8x2() {
        let switch = ColumnsortSwitch::new(8, 2, 16);
        for pattern in 0u64..(1 << 16) {
            let valid = bits_of(pattern, 16);
            let traced: Vec<bool> = switch
                .staged()
                .trace(&valid)
                .iter()
                .map(|&(v, _)| v)
                .collect();
            let mut grid = Grid::from_row_major(8, 2, valid.clone());
            columnsort_steps123(&mut grid, SortOrder::Descending);
            assert_eq!(&traced, grid.as_row_major(), "pattern {pattern:#x}");
        }
    }

    #[test]
    fn trace_equals_columnsort_steps123_exhaustively_4x4() {
        let switch = ColumnsortSwitch::new(4, 4, 16);
        for pattern in 0u64..(1 << 16) {
            let valid = bits_of(pattern, 16);
            let traced: Vec<bool> = switch
                .staged()
                .trace(&valid)
                .iter()
                .map(|&(v, _)| v)
                .collect();
            let mut grid = Grid::from_row_major(4, 4, valid.clone());
            columnsort_steps123(&mut grid, SortOrder::Descending);
            assert_eq!(&traced, grid.as_row_major(), "pattern {pattern:#x}");
        }
    }

    #[test]
    fn nearsort_guarantee_holds_exhaustively_4x4() {
        let switch = ColumnsortSwitch::new(4, 4, 16);
        let bound = switch.epsilon_bound();
        assert_eq!(bound, 9);
        for pattern in 0u64..(1 << 16) {
            let valid = bits_of(pattern, 16);
            let traced: Vec<bool> = switch
                .staged()
                .trace(&valid)
                .iter()
                .map(|&(v, _)| v)
                .collect();
            let eps = nearsort_epsilon(&traced, SortOrder::Descending);
            assert!(eps <= bound, "pattern {pattern:#x}: ε = {eps} > {bound}");
        }
    }

    #[test]
    fn concentration_property_exhaustive_8x2() {
        // ε = 1, so with m = 16: capacity 15.
        let switch = ColumnsortSwitch::new(8, 2, 16);
        assert_eq!(switch.guaranteed_capacity(), 15);
        for pattern in 0u64..(1 << 16) {
            let valid = bits_of(pattern, 16);
            let violations = check_concentration(&switch, &valid);
            assert!(
                violations.is_empty(),
                "pattern {pattern:#x}: {violations:?}"
            );
        }
    }

    #[test]
    fn concentration_property_random_8x4() {
        let switch = ColumnsortSwitch::new(8, 4, 24);
        let mut state = 99u64;
        for _ in 0..3000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let valid = bits_of(state, 32);
            let violations = check_concentration(&switch, &valid);
            assert!(violations.is_empty(), "{state:#x}: {violations:?}");
        }
    }

    #[test]
    fn delay_is_4_lg_r_plus_constant() {
        for (r, s) in [(8usize, 4usize), (16, 4), (64, 8)] {
            let switch = ColumnsortSwitch::new(r, s, r * s / 2);
            let lg_r = usize::BITS - (r - 1).leading_zeros();
            assert_eq!(switch.delay(), 4 * lg_r + 4, "r = {r}");
        }
    }

    #[test]
    fn chip_count_is_2s() {
        let switch = ColumnsortSwitch::new(16, 4, 32);
        assert_eq!(switch.staged().chip_count(), 8);
        assert_eq!(switch.staged().max_data_pins_per_chip(), 32);
    }

    #[test]
    fn netlist_matches_trace_8x4() {
        let switch = ColumnsortSwitch::new(8, 4, 18);
        let nl = switch.staged().build_netlist(true);
        assert_eq!(nl.depth(), switch.delay());
        let mut state = 5u64;
        for _ in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let valid = bits_of(state, 32);
            let expected: Vec<bool> = {
                let t = switch.staged().trace(&valid);
                switch
                    .staged()
                    .output_positions
                    .iter()
                    .map(|&p| t[p].0)
                    .collect()
            };
            assert_eq!(nl.eval(&valid), expected);
        }
    }

    #[test]
    fn square_constructor_is_beta_half() {
        let switch = ColumnsortSwitch::square(64, 32);
        assert_eq!(switch.shape().rows, 8);
        assert_eq!(switch.shape().cols, 8);
        assert_eq!(switch.epsilon_bound(), 49);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn rejects_bad_shape() {
        ColumnsortSwitch::new(8, 3, 10);
    }
}
