//! Packaging and resource accounting: the chips/boards/stacks/volume model
//! behind Table 1 and Figures 4, 7 and 8.
//!
//! Unit conventions (documented in DESIGN.md):
//!
//! * a p-port chip (hyperconcentrator or barrel shifter) occupies `p²` area
//!   units — the paper's "each with area Θ(n)" for √n-by-√n chips;
//! * a board's area is the sum of its chips' areas;
//! * a stack's volume is the sum of its boards' areas (unit board pitch);
//! * a 2-D crossbar joining two stages of `n` wires occupies `n²` area
//!   units — "the crossbar wiring area is Θ(n²), which dominates" (§4);
//! * the Figure 8 interstack connector transposing `w` wires occupies `w²`
//!   volume units.

use serde::{Deserialize, Serialize};

use crate::columnsort_switch::ColumnsortSwitch;
use crate::full_columnsort::FullColumnsortHyperconcentrator;
use crate::full_revsort::FullRevsortHyperconcentrator;
use crate::hyper::ceil_lg;
use crate::revsort_switch::{RevsortLayout, RevsortSwitch};

/// Physical dimensionality of a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dim {
    /// Single-board layout with crossbar wiring (Figures 3, 6).
    TwoDee,
    /// Stacked boards (Figures 4, 7).
    ThreeDee,
}

/// One distinct chip type used by a switch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipType {
    /// Descriptive name, e.g. `"8-by-8 hyperconcentrator"`.
    pub name: String,
    /// How many of this chip the switch uses.
    pub count: usize,
    /// Data pins (plus hardwired control pins where applicable).
    pub data_pins: usize,
    /// Area units occupied by one such chip.
    pub area_units: u64,
}

/// Complete resource accounting of one switch realization — the row data
/// of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackagingReport {
    /// The switch being packaged.
    pub name: String,
    /// 2-D or 3-D realization.
    pub dim: Dim,
    /// Distinct chip types with counts.
    pub chip_types: Vec<ChipType>,
    /// Distinct board types ("two board types" in §4).
    pub board_types: usize,
    /// Total boards across all stacks (0 for 2-D layouts).
    pub total_boards: usize,
    /// Number of stacks (0 for 2-D layouts).
    pub stacks: usize,
    /// Interstack connectors (Columnsort 3-D only).
    pub interstack_connectors: usize,
    /// 2-D silicon+wiring area, in units (0 for 3-D layouts).
    pub area_units: u64,
    /// 3-D volume, in units (0 for 2-D layouts).
    pub volume_units: u64,
    /// Gate delays through the packaged switch.
    pub gate_delays: u32,
}

impl PackagingReport {
    /// Total chips across all types.
    pub fn total_chips(&self) -> usize {
        self.chip_types.iter().map(|c| c.count).sum()
    }

    /// Maximum pins over all chip types.
    pub fn max_pins_per_chip(&self) -> usize {
        self.chip_types
            .iter()
            .map(|c| c.data_pins)
            .max()
            .unwrap_or(0)
    }

    /// Package a Revsort switch per its layout (Figure 3 or Figure 4).
    pub fn revsort(switch: &RevsortSwitch) -> Self {
        let side = switch.side();
        let n = side * side;
        let hyper_area = (side * side) as u64; // p² with p = side
        let hyper = ChipType {
            name: format!("{side}-by-{side} hyperconcentrator"),
            count: 3 * side,
            data_pins: 2 * side,
            area_units: hyper_area,
        };
        match switch.layout() {
            RevsortLayout::TwoDee => {
                // Two interstage crossbars of n wires each dominate.
                let crossbars = 2 * (n as u64) * (n as u64);
                let chips_area = hyper.area_units * hyper.count as u64;
                PackagingReport {
                    name: switch.staged().name.clone(),
                    dim: Dim::TwoDee,
                    chip_types: vec![hyper],
                    board_types: 1,
                    total_boards: 1,
                    stacks: 0,
                    interstack_connectors: 0,
                    area_units: chips_area + crossbars,
                    volume_units: 0,
                    gate_delays: switch.delay(),
                }
            }
            RevsortLayout::ThreeDee => {
                let barrel = ChipType {
                    name: format!("{side}-bit barrel shifter (hardwired rev(i))"),
                    count: side,
                    data_pins: 2 * side + ceil_lg(side) as usize,
                    area_units: hyper_area,
                };
                // Stacks 1 and 3: side boards of one hyper chip each;
                // stack 2: side boards of hyper + barrel.
                let volume =
                    (2 * side) as u64 * hyper_area + side as u64 * (hyper_area + barrel.area_units);
                PackagingReport {
                    name: switch.staged().name.clone(),
                    dim: Dim::ThreeDee,
                    chip_types: vec![hyper, barrel],
                    board_types: 2,
                    total_boards: 3 * side,
                    stacks: 3,
                    interstack_connectors: 0,
                    area_units: 0,
                    volume_units: volume,
                    gate_delays: switch.delay(),
                }
            }
        }
    }

    /// Package a Columnsort switch (Figure 6 for 2-D, Figure 7 for 3-D).
    pub fn columnsort(switch: &ColumnsortSwitch, dim: Dim) -> Self {
        let shape = switch.shape();
        let (r, s) = (shape.rows, shape.cols);
        let n = r * s;
        let hyper = ChipType {
            name: format!("{r}-by-{r} hyperconcentrator"),
            count: 2 * s,
            data_pins: 2 * r,
            area_units: (r * r) as u64,
        };
        match dim {
            Dim::TwoDee => {
                let crossbar = (n as u64) * (n as u64);
                let chips_area = hyper.area_units * hyper.count as u64;
                PackagingReport {
                    name: switch.staged().name.clone(),
                    dim,
                    chip_types: vec![hyper],
                    board_types: 1,
                    total_boards: 1,
                    stacks: 0,
                    interstack_connectors: 0,
                    area_units: chips_area + crossbar,
                    volume_units: 0,
                    gate_delays: switch.delay(),
                }
            }
            Dim::ThreeDee => {
                // Two stacks of s boards; s² interstack connectors each
                // transposing r/s wires in (r/s)² volume (Figure 8).
                let connectors = s * s;
                let connector_volume = ((r / s) * (r / s)) as u64;
                let volume =
                    hyper.area_units * hyper.count as u64 + connectors as u64 * connector_volume;
                PackagingReport {
                    name: switch.staged().name.clone(),
                    dim,
                    chip_types: vec![hyper],
                    board_types: 1,
                    total_boards: 2 * s,
                    stacks: 2,
                    interstack_connectors: connectors,
                    area_units: 0,
                    volume_units: volume,
                    gate_delays: switch.delay(),
                }
            }
        }
    }

    /// Package the full-Revsort hyperconcentrator of §6 (3-D only: its
    /// stacks are the point).
    pub fn full_revsort(switch: &FullRevsortHyperconcentrator) -> Self {
        let side = switch.side();
        let hyper_area = (side * side) as u64;
        let stages = switch.staged().stages.len();
        // Every stage is a stack of `side` hyperconcentrator boards; the
        // row-rotation stages also carry barrel shifters on their boards.
        let rotation_stacks = switch.repetitions();
        let hyper = ChipType {
            name: format!("{side}-by-{side} hyperconcentrator"),
            count: stages * side,
            data_pins: 2 * side,
            area_units: hyper_area,
        };
        let barrel = ChipType {
            name: format!("{side}-bit barrel shifter (hardwired rev(i))"),
            count: rotation_stacks * side,
            data_pins: 2 * side + ceil_lg(side) as usize,
            area_units: hyper_area,
        };
        let volume =
            hyper.area_units * hyper.count as u64 + barrel.area_units * barrel.count as u64;
        PackagingReport {
            name: switch.staged().name.clone(),
            dim: Dim::ThreeDee,
            chip_types: vec![hyper, barrel],
            board_types: 4, // plain, rotate, snake-row, uniform-row wiring
            total_boards: stages * side,
            stacks: stages,
            interstack_connectors: 0,
            area_units: 0,
            volume_units: volume,
            gate_delays: switch.delay(),
        }
    }

    /// Package the full-Columnsort hyperconcentrator of §6 (3-D).
    pub fn full_columnsort(switch: &FullColumnsortHyperconcentrator) -> Self {
        let shape = switch.shape();
        let (r, s) = (shape.rows, shape.cols);
        let hyper = ChipType {
            name: format!("{r}-by-{r} hyperconcentrator"),
            count: 3 * s + (s + 1),
            data_pins: 2 * r,
            area_units: (r * r) as u64,
        };
        let connectors = 3 * s * s; // three interstack junctions
        let connector_volume = ((r / s) * (r / s)) as u64;
        let volume = hyper.area_units * hyper.count as u64 + connectors as u64 * connector_volume;
        PackagingReport {
            name: switch.staged().name.clone(),
            dim: Dim::ThreeDee,
            chip_types: vec![hyper],
            board_types: 2, // plain boards and the padded step-7 boards
            total_boards: 3 * s + (s + 1),
            stacks: 4,
            interstack_connectors: connectors,
            area_units: 0,
            volume_units: volume,
            gate_delays: switch.delay(),
        }
    }
}

impl serde_json::ToJson for Dim {
    fn to_json(&self) -> serde_json::Value {
        serde_json::Value::String(
            match self {
                Dim::TwoDee => "2d",
                Dim::ThreeDee => "3d",
            }
            .to_string(),
        )
    }
}

impl serde_json::ToJson for ChipType {
    fn to_json(&self) -> serde_json::Value {
        serde_json::object([
            ("name", self.name.to_json()),
            ("count", self.count.to_json()),
            ("data_pins", self.data_pins.to_json()),
            ("area_units", self.area_units.to_json()),
        ])
    }
}

impl serde_json::ToJson for PackagingReport {
    fn to_json(&self) -> serde_json::Value {
        serde_json::object([
            ("name", self.name.to_json()),
            ("dim", self.dim.to_json()),
            ("chip_types", self.chip_types.to_json()),
            ("board_types", self.board_types.to_json()),
            ("total_boards", self.total_boards.to_json()),
            ("stacks", self.stacks.to_json()),
            (
                "interstack_connectors",
                self.interstack_connectors.to_json(),
            ),
            ("area_units", self.area_units.to_json()),
            ("volume_units", self.volume_units.to_json()),
            ("gate_delays", self.gate_delays.to_json()),
        ])
    }
}

/// The Figure 8 interstack connector: transposes `w` wires from vertical to
/// horizontal alignment in `Θ(w²)` volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterstackConnector {
    /// Wires transposed.
    pub wires: usize,
}

impl InterstackConnector {
    /// Volume units: `w²`.
    pub fn volume_units(&self) -> u64 {
        (self.wires * self.wires) as u64
    }

    /// Render the wire transposition as ASCII, one diagonal bend per wire
    /// (the Figure 8 drawing).
    pub fn render(&self) -> String {
        let w = self.wires;
        let mut out = String::new();
        for row in 0..w {
            for col in 0..w {
                if col == w - 1 - row {
                    out.push('+');
                } else if col > w - 1 - row {
                    out.push('-');
                } else {
                    out.push('|');
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revsort_switch::RevsortLayout;

    #[test]
    fn revsort_2d_area_is_crossbar_dominated() {
        let switch = RevsortSwitch::new(64, 28, RevsortLayout::TwoDee);
        let report = PackagingReport::revsort(&switch);
        assert_eq!(report.total_chips(), 24);
        assert_eq!(report.max_pins_per_chip(), 16);
        // Chips: 24 × 64 = 1536; crossbars: 2 × 64² = 8192.
        assert_eq!(report.area_units, 1536 + 8192);
        assert!(report.area_units > 24 * 64 * 2, "crossbars must dominate");
    }

    #[test]
    fn revsort_3d_matches_figure4_structure() {
        let switch = RevsortSwitch::new(64, 28, RevsortLayout::ThreeDee);
        let report = PackagingReport::revsort(&switch);
        assert_eq!(report.stacks, 3);
        assert_eq!(report.total_boards, 24);
        assert_eq!(report.board_types, 2);
        assert_eq!(report.chip_types.len(), 2);
        // Barrel shifter pins: 2·8 + 3 = 19 = 2√n + ⌈(lg n)/2⌉.
        assert_eq!(report.max_pins_per_chip(), 19);
        // Volume: 16 plain boards × 64 + 8 double boards × 128 = 2048.
        assert_eq!(report.volume_units, 2048);
    }

    #[test]
    fn revsort_3d_volume_scales_as_n_to_3_2() {
        let v: Vec<u64> = [64usize, 256, 1024]
            .iter()
            .map(|&n| {
                let s = RevsortSwitch::new(n, n / 2, RevsortLayout::ThreeDee);
                PackagingReport::revsort(&s).volume_units
            })
            .collect();
        // n quadruples → volume should grow ~8× (= 4^{3/2}).
        for w in v.windows(2) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(
                (6.0..=10.0).contains(&ratio),
                "volume ratio {ratio} not ~8x"
            );
        }
    }

    #[test]
    fn columnsort_3d_matches_figure7_structure() {
        let switch = ColumnsortSwitch::new(8, 4, 18);
        let report = PackagingReport::columnsort(&switch, Dim::ThreeDee);
        assert_eq!(report.stacks, 2);
        assert_eq!(report.total_boards, 8);
        assert_eq!(report.interstack_connectors, 16);
        assert_eq!(report.max_pins_per_chip(), 16);
        // 8 chips × 64 + 16 connectors × 4 = 576.
        assert_eq!(report.volume_units, 576);
    }

    #[test]
    fn columnsort_volume_scales_as_n_to_1_plus_beta() {
        // β = 3/4 grids: r = n^{3/4}, s = n^{1/4} — n = 256, 4096, 65536.
        let configs = [(64usize, 4usize), (512, 8), (4096, 16)];
        let volumes: Vec<u64> = configs
            .iter()
            .map(|&(r, s)| {
                let switch = ColumnsortSwitch::new(r, s, r * s / 2);
                PackagingReport::columnsort(&switch, Dim::ThreeDee).volume_units
            })
            .collect();
        // n grows 16× each step; volume should grow ~16^{1+3/4... } hmm:
        // with r fixed to n^{3/4}: volume = 2sr² + r² ~ n^{1+β}; each step
        // n×16 → volume × 16^{7/4} ≈ 128.
        for w in volumes.windows(2) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(
                (90.0..=180.0).contains(&ratio),
                "volume ratio {ratio} not ~128x"
            );
        }
    }

    #[test]
    fn full_packagings_are_consistent() {
        let fr = FullRevsortHyperconcentrator::new(256);
        let report = PackagingReport::full_revsort(&fr);
        assert_eq!(report.stacks, fr.chip_traversals());
        assert_eq!(report.total_boards, fr.chip_traversals() * 16);

        let fc = FullColumnsortHyperconcentrator::new(32, 4);
        let report = PackagingReport::full_columnsort(&fc);
        assert_eq!(report.stacks, 4);
        assert_eq!(report.total_boards, 3 * 4 + 5);
    }

    #[test]
    fn interstack_connector_volume_and_render() {
        let c = InterstackConnector { wires: 4 };
        assert_eq!(c.volume_units(), 16);
        let drawing = c.render();
        assert_eq!(drawing.lines().count(), 4);
        assert_eq!(drawing.matches('+').count(), 4);
    }
}
