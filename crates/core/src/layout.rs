//! A placement engine for the paper's layouts: Figures 3 and 6 (2-D,
//! chips + interstage crossbars) and Figures 4 and 7 (3-D stacks of
//! boards).
//!
//! Unlike [`crate::packaging`], which *counts* resources with the paper's
//! unit conventions, this module actually *places* every chip, wiring
//! channel, board, and stack on an integer grid, validates that nothing
//! overlaps, and measures area/volume as bounding boxes — an independent
//! geometric check of the Θ claims, plus SVG renderings of the figures.
//!
//! Geometry conventions (lambda units):
//! * a p-port chip is a p×p square with ports on its vertical edges;
//! * an interstage crossbar carrying w wires needs w vertical and w
//!   horizontal tracks — a w-wide channel spanning the stage height;
//! * boards carry their chips side by side with a one-unit margin; stacks
//!   place boards at unit pitch along z with an air gap between stacks.

use serde::{Deserialize, Serialize};

use crate::geometry::{Box3, Point, Rect};
use crate::revsort_switch::RevsortSwitch;
use crate::ColumnsortSwitch;

/// Spacing between placed parts (air/routing margin).
const GAP: i64 = 2;

/// A placed chip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedChip {
    /// Instance name, e.g. `"H2,3"` (stage 2, chip 3 — the paper's
    /// naming).
    pub name: String,
    /// Placement.
    pub rect: Rect,
}

/// A placed wiring channel (crossbar region between stages).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WiringChannel {
    /// Descriptive label.
    pub label: String,
    /// Channel region.
    pub rect: Rect,
    /// Wires crossing the channel.
    pub wires: usize,
}

/// A complete 2-D layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout2D {
    /// Placed chips.
    pub chips: Vec<PlacedChip>,
    /// Placed crossbar channels.
    pub channels: Vec<WiringChannel>,
}

impl Layout2D {
    /// Validate that no two placed parts overlap.
    ///
    /// # Panics
    /// On any overlap.
    pub fn validate(&self) {
        let mut rects: Vec<(&str, Rect)> = self
            .chips
            .iter()
            .map(|c| (c.name.as_str(), c.rect))
            .collect();
        rects.extend(self.channels.iter().map(|c| (c.label.as_str(), c.rect)));
        for i in 0..rects.len() {
            for j in i + 1..rects.len() {
                assert!(
                    !rects[i].1.intersects(&rects[j].1),
                    "layout overlap: {} and {}",
                    rects[i].0,
                    rects[j].0
                );
            }
        }
    }

    /// Bounding-box area of the whole layout.
    pub fn area(&self) -> i64 {
        let mut rects: Vec<Rect> = self.chips.iter().map(|c| c.rect).collect();
        rects.extend(self.channels.iter().map(|c| c.rect));
        Rect::bounding(&rects).area()
    }

    /// Area occupied by chips alone.
    pub fn chip_area(&self) -> i64 {
        self.chips.iter().map(|c| c.rect.area()).sum()
    }

    /// Area occupied by wiring channels alone.
    pub fn wiring_area(&self) -> i64 {
        self.channels.iter().map(|c| c.rect.area()).sum()
    }

    /// Render as SVG (chips as labeled boxes, channels hatched).
    pub fn to_svg(&self) -> String {
        let mut rects: Vec<Rect> = self.chips.iter().map(|c| c.rect).collect();
        rects.extend(self.channels.iter().map(|c| c.rect));
        let bb = Rect::bounding(&rects);
        let scale = 6.0_f64;
        let w = bb.width() as f64 * scale + 20.0;
        let h = bb.height() as f64 * scale + 20.0;
        let mut svg = format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#
        );
        svg.push('\n');
        let place = |r: &Rect| -> (f64, f64, f64, f64) {
            (
                (r.min.x - bb.min.x) as f64 * scale + 10.0,
                (r.min.y - bb.min.y) as f64 * scale + 10.0,
                r.width() as f64 * scale,
                r.height() as f64 * scale,
            )
        };
        for channel in &self.channels {
            let (x, y, w, h) = place(&channel.rect);
            svg.push_str(&format!(
                r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="#dce6f2" stroke="#7f9db9"/>"##
            ));
            svg.push('\n');
        }
        for chip in &self.chips {
            let (x, y, w, h) = place(&chip.rect);
            svg.push_str(&format!(
                r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="#f6e8c3" stroke="#8a6d3b"/>"##
            ));
            svg.push('\n');
            svg.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" font-size="9" font-family="monospace">{}</text>"#,
                x + 2.0,
                y + h / 2.0,
                chip.name
            ));
            svg.push('\n');
        }
        svg.push_str("</svg>\n");
        svg
    }
}

/// A placed board in a 3-D stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedBoard {
    /// Name, e.g. `"stack 2 board 5"`.
    pub name: String,
    /// Physical extent.
    pub volume: Box3,
    /// Chips on this board (2-D footprints in board coordinates).
    pub chips: Vec<PlacedChip>,
}

/// A complete 3-D layout (stacks of boards).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout3D {
    /// All boards across all stacks.
    pub boards: Vec<PlacedBoard>,
    /// Number of stacks.
    pub stacks: usize,
}

impl Layout3D {
    /// Validate that no two boards overlap.
    ///
    /// # Panics
    /// On any overlap.
    pub fn validate(&self) {
        for i in 0..self.boards.len() {
            for j in i + 1..self.boards.len() {
                assert!(
                    !self.boards[i].volume.intersects(&self.boards[j].volume),
                    "layout overlap: {} and {}",
                    self.boards[i].name,
                    self.boards[j].name
                );
            }
        }
    }

    /// Bounding-box volume.
    pub fn volume(&self) -> i64 {
        let boxes: Vec<Box3> = self.boards.iter().map(|b| b.volume).collect();
        Box3::bounding(&boxes).volume()
    }

    /// Render a side elevation (x–z plane) as SVG: each board a slat,
    /// stacks side by side — the Figure 4/7 view.
    pub fn to_svg_side_view(&self) -> String {
        let slats: Vec<Rect> = self
            .boards
            .iter()
            .map(|b| {
                Rect::at(
                    Point::new(b.volume.footprint.min.x, b.volume.z_min),
                    b.volume.footprint.width(),
                    (b.volume.z_max - b.volume.z_min).max(1),
                )
            })
            .collect();
        let bb = Rect::bounding(&slats);
        let scale = 8.0_f64;
        let w = bb.width() as f64 * scale + 20.0;
        let h = bb.height() as f64 * scale + 20.0;
        let mut svg = format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}">"#
        );
        svg.push('\n');
        for (board, slat) in self.boards.iter().zip(&slats) {
            let x = (slat.min.x - bb.min.x) as f64 * scale + 10.0;
            // Flip z so board 0 is at the bottom.
            let y = (bb.max.y - slat.max.y) as f64 * scale + 10.0;
            let sw = slat.width() as f64 * scale;
            let sh = (slat.height() as f64 * scale).max(3.0);
            svg.push_str(&format!(
                r##"<rect x="{x:.1}" y="{y:.1}" width="{sw:.1}" height="{sh:.1}" fill="#c7d9b7" stroke="#55771c"><title>{}</title></rect>"##,
                board.name
            ));
            svg.push('\n');
        }
        svg.push_str("</svg>\n");
        svg
    }

    /// Whether straight air channels exist between consecutive boards of
    /// every stack — the paper's "allow air to flow through in all three
    /// dimensions" claim, checked as unit z-gaps between board volumes.
    pub fn has_air_gaps(&self) -> bool {
        // Boards within one x-range (stack) must not touch in z.
        for i in 0..self.boards.len() {
            for j in i + 1..self.boards.len() {
                let a = &self.boards[i].volume;
                let b = &self.boards[j].volume;
                if a.footprint.intersects(&b.footprint) {
                    let gap = if a.z_min >= b.z_max {
                        a.z_min - b.z_max
                    } else if b.z_min >= a.z_max {
                        b.z_min - a.z_max
                    } else {
                        return false; // overlapping, no gap at all
                    };
                    if gap < 1 {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Figure 3: the 2-D Revsort switch layout. Three columns of √n chips with
/// two n-wire crossbar channels between them.
pub fn revsort_layout_2d(switch: &RevsortSwitch) -> Layout2D {
    let side = switch.side() as i64;
    let n = side * side;
    let chip_w = side; // p×p chip, p = side ports per side
    let stage_height = side * (chip_w + GAP) - GAP;
    let mut chips = Vec::new();
    let mut channels = Vec::new();
    let mut x = 0i64;
    for stage in 1..=3 {
        for c in 0..side {
            chips.push(PlacedChip {
                name: format!("H{stage},{c}"),
                rect: Rect::at(Point::new(x, c * (chip_w + GAP)), chip_w, chip_w),
            });
        }
        x += chip_w;
        if stage < 3 {
            channels.push(WiringChannel {
                label: format!("crossbar {stage}->{}", stage + 1),
                rect: Rect::at(Point::new(x + GAP, 0), n, stage_height),
                wires: n as usize,
            });
            x += GAP + n + GAP;
        }
    }
    let layout = Layout2D { chips, channels };
    layout.validate();
    layout
}

/// Figure 6: the 2-D Columnsort switch layout. Two columns of s r-by-r
/// chips with one n-wire crossbar between them.
pub fn columnsort_layout_2d(switch: &ColumnsortSwitch) -> Layout2D {
    let r = switch.shape().rows as i64;
    let s = switch.shape().cols as i64;
    let n = r * s;
    let stage_height = s * (r + GAP) - GAP;
    let mut chips = Vec::new();
    for c in 0..s {
        chips.push(PlacedChip {
            name: format!("H1,{c}"),
            rect: Rect::at(Point::new(0, c * (r + GAP)), r, r),
        });
    }
    let channel = WiringChannel {
        label: "RM^-1 o CM crossbar".into(),
        rect: Rect::at(Point::new(r + GAP, 0), n, stage_height),
        wires: n as usize,
    };
    let x2 = r + GAP + n + GAP;
    for c in 0..s {
        chips.push(PlacedChip {
            name: format!("H2,{c}"),
            rect: Rect::at(Point::new(x2, c * (r + GAP)), r, r),
        });
    }
    let layout = Layout2D {
        chips,
        channels: vec![channel],
    };
    layout.validate();
    layout
}

/// Figure 4: the 3-D Revsort switch packaging. Three stacks of √n boards;
/// stage-2 boards carry a barrel shifter beside the hyperconcentrator.
pub fn revsort_layout_3d(switch: &RevsortSwitch) -> Layout3D {
    let side = switch.side() as i64;
    let chip_w = side;
    let mut boards = Vec::new();
    let mut x = 0i64;
    for stack in 1..=3 {
        let double = stack == 2; // hyper + barrel per board
        let board_w = if double { 2 * chip_w + GAP } else { chip_w } + 2;
        let board_d = chip_w + 2;
        for b in 0..side {
            let z = b * 2; // unit board + unit air gap
            let mut chips = vec![PlacedChip {
                name: format!("H{stack},{b}"),
                rect: Rect::at(Point::new(1, 1), chip_w, chip_w),
            }];
            if double {
                chips.push(PlacedChip {
                    name: format!("B{b} (rev({b}))"),
                    rect: Rect::at(Point::new(1 + chip_w + GAP, 1), chip_w, chip_w),
                });
            }
            boards.push(PlacedBoard {
                name: format!("stack {stack} board {b}"),
                volume: Box3::new(Rect::at(Point::new(x, 0), board_w, board_d), z, z + 1),
                chips,
            });
        }
        x += board_w + GAP;
    }
    let layout = Layout3D { boards, stacks: 3 };
    layout.validate();
    layout
}

/// Figure 7: the 3-D Columnsort switch packaging — two stacks of s boards.
pub fn columnsort_layout_3d(switch: &ColumnsortSwitch) -> Layout3D {
    let r = switch.shape().rows as i64;
    let s = switch.shape().cols as i64;
    let board_w = r + 2;
    let board_d = r + 2;
    let mut boards = Vec::new();
    for stack in 1..=2 {
        let x = (stack - 1) * (board_w + GAP);
        for b in 0..s {
            let z = b * 2;
            boards.push(PlacedBoard {
                name: format!("stack {stack} board {b}"),
                volume: Box3::new(Rect::at(Point::new(x, 0), board_w, board_d), z, z + 1),
                chips: vec![PlacedChip {
                    name: format!("H{stack},{b}"),
                    rect: Rect::at(Point::new(1, 1), r, r),
                }],
            });
        }
    }
    let layout = Layout3D { boards, stacks: 2 };
    layout.validate();
    layout
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revsort_switch::RevsortLayout;

    #[test]
    fn figure3_layout_places_without_overlap() {
        let switch = RevsortSwitch::new(64, 28, RevsortLayout::TwoDee);
        let layout = revsort_layout_2d(&switch);
        assert_eq!(layout.chips.len(), 24);
        assert_eq!(layout.channels.len(), 2);
        // Crossbar wiring dominates silicon, as §4 says.
        assert!(layout.wiring_area() > layout.chip_area());
    }

    #[test]
    fn figure3_area_grows_quadratically() {
        let areas: Vec<f64> = [64usize, 256, 1024]
            .iter()
            .map(|&n| {
                let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::TwoDee);
                revsort_layout_2d(&switch).area() as f64
            })
            .collect();
        for w in areas.windows(2) {
            let ratio = w[1] / w[0];
            assert!(
                (10.0..=22.0).contains(&ratio),
                "area ratio {ratio} not ~16x (n²)"
            );
        }
    }

    #[test]
    fn figure6_layout_matches_structure() {
        let switch = ColumnsortSwitch::new(8, 4, 18);
        let layout = columnsort_layout_2d(&switch);
        assert_eq!(layout.chips.len(), 8);
        assert_eq!(layout.channels[0].wires, 32);
    }

    #[test]
    fn figure4_stacks_have_air_gaps_and_scale() {
        let switch = RevsortSwitch::new(64, 28, RevsortLayout::ThreeDee);
        let layout = revsort_layout_3d(&switch);
        assert_eq!(layout.boards.len(), 24);
        assert!(layout.has_air_gaps());
        // Geometric volume grows like n^{3/2}: n×4 → ×8 within slack.
        let volumes: Vec<f64> = [64usize, 256, 1024]
            .iter()
            .map(|&n| {
                let s = RevsortSwitch::new(n, n / 2, RevsortLayout::ThreeDee);
                revsort_layout_3d(&s).volume() as f64
            })
            .collect();
        for w in volumes.windows(2) {
            let ratio = w[1] / w[0];
            assert!(
                (5.0..=11.0).contains(&ratio),
                "volume ratio {ratio} not ~8x"
            );
        }
    }

    #[test]
    fn figure7_layout_places_two_stacks() {
        let switch = ColumnsortSwitch::new(8, 4, 18);
        let layout = columnsort_layout_3d(&switch);
        assert_eq!(layout.stacks, 2);
        assert_eq!(layout.boards.len(), 8);
        assert!(layout.has_air_gaps());
    }

    #[test]
    fn svg_renders_all_parts() {
        let switch = ColumnsortSwitch::new(8, 4, 18);
        let svg = columnsort_layout_2d(&switch).to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // 8 chips + 1 channel + 8 labels.
        assert_eq!(svg.matches("<rect").count(), 9);
        assert_eq!(svg.matches("<text").count(), 8);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn validate_catches_overlaps() {
        let chip = |name: &str| PlacedChip {
            name: name.into(),
            rect: Rect::at(Point::new(0, 0), 4, 4),
        };
        let layout = Layout2D {
            chips: vec![chip("a"), chip("b")],
            channels: vec![],
        };
        layout.validate();
    }
}
