//! The parallel-prefix + butterfly hyperconcentrator — the alternative
//! design §1 compares the multichip switches against:
//!
//! "A different hyperconcentrator switch, comprised of a parallel prefix
//! circuit and a butterfly network, can be built in volume Θ(n^{3/2}) with
//! O(n lg n) chips and as few as four data pins per chip, but this switch
//! is not combinational. Although its sequential control is not very
//! complex, it is not as simple as that of a combinational circuit."
//!
//! The construction: a parallel prefix circuit ranks the valid inputs
//! (message `i` gets destination `rank(i)` = number of valid inputs before
//! it), then a butterfly network self-routes each message to output
//! `rank(i)` by its destination bits. Because the destination map of a
//! compaction is *monotone*, the butterfly routes it without conflicts —
//! which this module also demonstrates mechanically.
//!
//! Here the prefix circuit is elaborated to a real [`netlist::Netlist`]
//! (it is combinational) while the butterfly is simulated at the
//! register-transfer level with explicit 2×2 switch states, mirroring how
//! the design needs latched control — the very property that makes the
//! paper prefer combinational partial concentrators.

use netlist::{Literal, Netlist};
use serde::{Deserialize, Serialize};

use crate::hyper::ceil_lg;
use crate::spec::{ConcentratorKind, ConcentratorSwitch, Routing};

/// The prefix + butterfly hyperconcentrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixButterflyHyperconcentrator {
    n: usize,
}

/// The latched state of one 2×2 butterfly switch for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchSetting {
    /// Upper input → upper output, lower → lower.
    Straight,
    /// Upper input → lower output, lower → upper.
    Crossed,
}

/// One frame's routing through the butterfly: per level, per switch pair,
/// the latched setting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ButterflyProgram {
    /// `settings[level][pair]`.
    pub settings: Vec<Vec<SwitchSetting>>,
}

impl PrefixButterflyHyperconcentrator {
    /// Build for `n = 2^q` wires.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "butterfly requires n = 2^q >= 2"
        );
        PrefixButterflyHyperconcentrator { n }
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of butterfly levels, `lg n`.
    pub fn levels(&self) -> usize {
        self.n.trailing_zeros() as usize
    }

    /// Exclusive prefix ranks of the valid inputs.
    pub fn ranks(&self, valid: &[bool]) -> Vec<usize> {
        assert_eq!(valid.len(), self.n);
        let mut rank = 0usize;
        valid
            .iter()
            .map(|&v| {
                let r = rank;
                if v {
                    rank += 1;
                }
                r
            })
            .collect()
    }

    /// Build the combinational parallel-prefix ranking netlist: `n` valid
    /// bits in, `n × ⌈lg(n+1)⌉` rank bits out (input `i`'s exclusive
    /// count, LSB first), realized as a Sklansky prefix tree of ripple
    /// adders.
    pub fn build_prefix_netlist(&self) -> Netlist {
        let n = self.n;
        let width = ceil_lg(n + 1) as usize;
        let mut nl = Netlist::new();
        let inputs = nl.inputs_n(n);
        // Represent each wire's running count as `width` bits. Leaves: the
        // count of a single input is the input bit itself.
        let zero = nl.constant(false);
        let mut counts: Vec<Vec<Literal>> = inputs
            .iter()
            .map(|&w| {
                let mut bits = vec![zero; width];
                bits[0] = Literal::pos(w);
                bits
            })
            .collect();
        // Sklansky: at stage s (block size 2^{s+1}), every position in the
        // upper half of a block adds the total of the lower half. The total
        // of positions [0..k) ends up at position k-1's inclusive count.
        let mut stride = 1usize;
        while stride < n {
            let snapshot = counts.clone();
            for block in (0..n).step_by(2 * stride) {
                let carry_in = &snapshot[block + stride - 1];
                for pos in block + stride..(block + 2 * stride).min(n) {
                    counts[pos] = add_bits(&mut nl, &snapshot[pos], carry_in);
                }
            }
            stride *= 2;
        }
        // Exclusive rank of input i = inclusive count of i-1 (0 for i=0).
        let zero_bits = vec![zero; width];
        for i in 0..n {
            let bits = if i == 0 { &zero_bits } else { &counts[i - 1] };
            for &b in bits {
                nl.mark_output(b);
            }
        }
        nl
    }

    /// Compute the latched butterfly program for a frame: level `ℓ`
    /// examines destination bit `ℓ` (LSB first). For a *compaction* map
    /// the two messages of any pair have consecutive ranks, so bit 0
    /// always separates them, and the even/odd sub-maps are compactions
    /// again — LSB-first routing is conflict-free by induction (checked
    /// exhaustively in the tests; MSB-first order conflicts already at
    /// n = 16).
    pub fn program(&self, valid: &[bool]) -> ButterflyProgram {
        let n = self.n;
        let levels = self.levels();
        let ranks = self.ranks(valid);
        // Message at wire w: Some(destination).
        let mut wires: Vec<Option<usize>> = (0..n).map(|i| valid[i].then(|| ranks[i])).collect();
        let mut settings = Vec::with_capacity(levels);
        for level in 0..levels {
            let bit = level;
            let stride = 1usize << bit;
            let mut level_settings = Vec::with_capacity(n / 2);
            let mut next = vec![None; n];
            // Pairs: wires w and w | stride with (w & stride) == 0.
            for w in 0..n {
                if w & stride != 0 {
                    continue;
                }
                let upper = wires[w];
                let lower = wires[w | stride];
                // Desired output side at this level = destination bit.
                let want_low = |m: Option<usize>| m.map(|d| (d >> bit) & 1 == 0);
                let setting = match (want_low(upper), want_low(lower)) {
                    (Some(true), Some(true)) | (Some(false), Some(false)) => {
                        panic!("butterfly conflict at level {level}, pair {w}")
                    }
                    (Some(true), _) | (_, Some(false)) | (None, None) => SwitchSetting::Straight,
                    _ => SwitchSetting::Crossed,
                };
                let (to_upper, to_lower) = match setting {
                    SwitchSetting::Straight => (upper, lower),
                    SwitchSetting::Crossed => (lower, upper),
                };
                next[w] = to_upper;
                next[w | stride] = to_lower;
                level_settings.push(setting);
            }
            wires = next;
            settings.push(level_settings);
        }
        // All messages must now sit at their destinations.
        for (w, msg) in wires.iter().enumerate() {
            if let Some(dest) = msg {
                debug_assert_eq!(*dest, w, "message did not reach its destination");
            }
        }
        ButterflyProgram { settings }
    }

    /// Replay a program on a frame of wire values (one bit per wire per
    /// cycle), as the latched hardware does after setup.
    pub fn replay<T: Copy + Default>(&self, program: &ButterflyProgram, inputs: &[T]) -> Vec<T> {
        assert_eq!(inputs.len(), self.n);
        let mut wires = inputs.to_vec();
        for (level, level_settings) in program.settings.iter().enumerate() {
            let bit = level;
            let stride = 1usize << bit;
            let mut pair = 0usize;
            let mut next = vec![T::default(); self.n];
            for w in 0..self.n {
                if w & stride != 0 {
                    continue;
                }
                match level_settings[pair] {
                    SwitchSetting::Straight => {
                        next[w] = wires[w];
                        next[w | stride] = wires[w | stride];
                    }
                    SwitchSetting::Crossed => {
                        next[w] = wires[w | stride];
                        next[w | stride] = wires[w];
                    }
                }
                pair += 1;
            }
            wires = next;
        }
        wires
    }

    /// Setup latency in cycles: the prefix tree's depth plus one latch
    /// cycle per butterfly level — this is the "sequential control" cost
    /// the combinational designs avoid.
    pub fn setup_cycles(&self) -> u32 {
        self.build_prefix_netlist_depth() + self.levels() as u32
    }

    fn build_prefix_netlist_depth(&self) -> u32 {
        // Depth formula: lg n prefix stages × ripple-add depth. Computed
        // from the real netlist to stay honest.
        self.build_prefix_netlist().depth()
    }

    /// Resource model per §1: `n/2 · lg n` butterfly switch chips at 4
    /// data pins each, plus `n − 1` prefix combine chips.
    pub fn chip_count(&self) -> usize {
        self.n / 2 * self.levels() + (self.n - 1)
    }

    /// Data pins per butterfly switch chip — "as few as four".
    pub fn data_pins_per_switch_chip(&self) -> usize {
        4
    }
}

/// Ripple adder over little-endian bit vectors of equal width (result
/// truncated to the same width — counts never overflow ⌈lg(n+1)⌉ bits).
fn add_bits(nl: &mut Netlist, a: &[Literal], b: &[Literal]) -> Vec<Literal> {
    debug_assert_eq!(a.len(), b.len());
    let mut out = Vec::with_capacity(a.len());
    let mut carry: Option<Literal> = None;
    for (&x, &y) in a.iter().zip(b) {
        let (sum, c) = match carry {
            None => {
                let sum = nl.xor([x, y]);
                let c = nl.and([x, y]);
                (sum, c)
            }
            Some(cin) => {
                let sum = nl.xor([x, y, cin]);
                let xy = nl.and([x, y]);
                let xc = nl.and([x, cin]);
                let yc = nl.and([y, cin]);
                let c = nl.or([xy, xc, yc]);
                (sum, c)
            }
        };
        out.push(sum);
        carry = Some(c);
    }
    out
}

impl ConcentratorSwitch for PrefixButterflyHyperconcentrator {
    fn inputs(&self) -> usize {
        self.n
    }

    fn outputs(&self) -> usize {
        self.n
    }

    fn kind(&self) -> ConcentratorKind {
        ConcentratorKind::Hyperconcentrator
    }

    fn route(&self, valid: &[bool]) -> Routing {
        let ranks = self.ranks(valid);
        let assignment = valid
            .iter()
            .zip(&ranks)
            .map(|(&v, &r)| v.then_some(r))
            .collect();
        Routing::from_assignment(assignment, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::check_concentration;

    fn bits_of(pattern: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (pattern >> i) & 1 == 1).collect()
    }

    #[test]
    fn butterfly_routes_all_patterns_without_conflict_n16() {
        // The heart of the design: compaction maps are monotone, so the
        // MSB-first self-routing butterfly never conflicts. Exhaustive.
        let switch = PrefixButterflyHyperconcentrator::new(16);
        for pattern in 0u64..(1 << 16) {
            let valid = bits_of(pattern, 16);
            let program = switch.program(&valid); // panics on conflict
                                                  // Replaying the wires' source indices lands each message at
                                                  // its rank.
            let tokens: Vec<usize> = (0..16).map(|i| if valid[i] { i + 1 } else { 0 }).collect();
            let out = switch.replay(&program, &tokens);
            let ranks = switch.ranks(&valid);
            for (i, &v) in valid.iter().enumerate() {
                if v {
                    assert_eq!(out[ranks[i]], i + 1, "pattern {pattern:#x}");
                }
            }
        }
    }

    #[test]
    fn behaves_as_hyperconcentrator() {
        let switch = PrefixButterflyHyperconcentrator::new(8);
        for pattern in 0u64..256 {
            let valid = bits_of(pattern, 8);
            assert!(check_concentration(&switch, &valid).is_empty());
        }
    }

    #[test]
    fn prefix_netlist_computes_exclusive_ranks() {
        for n in [2usize, 4, 8, 16] {
            let switch = PrefixButterflyHyperconcentrator::new(n);
            let nl = switch.build_prefix_netlist();
            let width = ceil_lg(n + 1) as usize;
            assert_eq!(nl.output_count(), n * width);
            for pattern in 0u64..(1u64 << n).min(4096) {
                let valid = bits_of(pattern, n);
                let out = nl.eval(&valid);
                let expected = switch.ranks(&valid);
                for i in 0..n {
                    let mut got = 0usize;
                    for b in 0..width {
                        if out[i * width + b] {
                            got |= 1 << b;
                        }
                    }
                    assert_eq!(got, expected[i], "n={n}, pattern {pattern:#x}, input {i}");
                }
            }
        }
    }

    #[test]
    fn setup_cost_grows_with_n_unlike_combinational_designs() {
        let small = PrefixButterflyHyperconcentrator::new(16);
        let large = PrefixButterflyHyperconcentrator::new(256);
        assert!(large.setup_cycles() > small.setup_cycles());
        // Order lg²n-ish growth; just pin the concrete values as a
        // regression reference.
        assert!(small.setup_cycles() >= small.levels() as u32);
    }

    #[test]
    fn chip_model_matches_section1() {
        let switch = PrefixButterflyHyperconcentrator::new(256);
        // n/2 lg n switches + n-1 prefix nodes = 1024 + 255.
        assert_eq!(switch.chip_count(), 1279);
        assert_eq!(switch.data_pins_per_switch_chip(), 4);
    }

    #[test]
    #[should_panic(expected = "2^q")]
    fn rejects_non_power_of_two() {
        PrefixButterflyHyperconcentrator::new(12);
    }
}
