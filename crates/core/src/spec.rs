//! Switch specifications: the (n, m, α) partial concentrator contract and
//! mechanical verifiers for it.

use serde::{Deserialize, Serialize};

/// What kind of concentration guarantee a switch makes (§1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConcentratorKind {
    /// Routes any `k ≤ n` valid inputs to the first `k` outputs.
    Hyperconcentrator,
    /// Routes min(k, m) messages whenever `k` messages arrive.
    Perfect,
    /// Routes all messages when `k ≤ αm`, and at least `αm` when `k > αm`.
    Partial {
        /// The load ratio `α` (0 < α ≤ 1).
        alpha: f64,
    },
}

/// The outcome of a setup cycle: which electrical paths were established.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Routing {
    /// For each input wire: the output wire its message was routed to, or
    /// `None` (input invalid, or valid but unrouted due to congestion).
    pub assignment: Vec<Option<usize>>,
    /// For each output wire: the input wire feeding it, or `None`.
    pub output_source: Vec<Option<usize>>,
}

impl Routing {
    /// Build from an input→output assignment, deriving the reverse map and
    /// validating disjointness (electrical paths may not share wires).
    ///
    /// # Panics
    /// If two inputs claim the same output or an output index is out of
    /// range.
    pub fn from_assignment(assignment: Vec<Option<usize>>, outputs: usize) -> Self {
        let mut output_source = vec![None; outputs];
        for (input, &out) in assignment.iter().enumerate() {
            if let Some(out) = out {
                assert!(
                    out < outputs,
                    "assignment targets output {out} >= m = {outputs}"
                );
                assert!(
                    output_source[out].is_none(),
                    "outputs must be disjoint: output {out} claimed twice"
                );
                output_source[out] = Some(input);
            }
        }
        Routing {
            assignment,
            output_source,
        }
    }

    /// Number of established paths.
    pub fn routed(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// Inputs that were valid but did not get a path (congestion victims).
    pub fn unrouted_inputs<'a>(&'a self, valid: &'a [bool]) -> impl Iterator<Item = usize> + 'a {
        valid
            .iter()
            .enumerate()
            .filter(move |&(i, &v)| v && self.assignment[i].is_none())
            .map(|(i, _)| i)
    }
}

/// A combinational concentrator switch: `n` input wires, `m ≤ n` output
/// wires, and a setup cycle establishing disjoint electrical paths from
/// valid inputs to outputs.
pub trait ConcentratorSwitch {
    /// Number of input wires `n`.
    fn inputs(&self) -> usize;

    /// Number of output wires `m`.
    fn outputs(&self) -> usize;

    /// The guarantee this switch makes.
    fn kind(&self) -> ConcentratorKind;

    /// Run a setup cycle: the valid bits arrive, the switch establishes
    /// electrical paths.
    ///
    /// # Panics
    /// If `valid.len() != self.inputs()`.
    fn route(&self, valid: &[bool]) -> Routing;

    /// The guaranteed capacity: every pattern with at most this many valid
    /// inputs is routed completely. For a partial concentrator this is
    /// `⌊αm⌋`; for perfect/hyper switches it is `m`.
    fn guaranteed_capacity(&self) -> usize {
        match self.kind() {
            ConcentratorKind::Hyperconcentrator | ConcentratorKind::Perfect => self.outputs(),
            ConcentratorKind::Partial { alpha } => (alpha * self.outputs() as f64).floor() as usize,
        }
    }
}

/// The failure modes [`check_concentration`] can detect.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConcentrationViolation {
    /// A valid input went unrouted although `k ≤` guaranteed capacity.
    DroppedUnderCapacity {
        /// The offending input wire.
        input: usize,
        /// Number of valid inputs in the pattern.
        k: usize,
    },
    /// Fewer than the guaranteed number of outputs carry messages although
    /// `k >` guaranteed capacity.
    UnderDelivered {
        /// Paths actually established.
        delivered: usize,
        /// Paths the guarantee requires.
        required: usize,
    },
    /// An invalid input was routed (phantom message).
    PhantomMessage {
        /// The offending input wire.
        input: usize,
    },
    /// A hyperconcentrator failed to use exactly the first `k` outputs.
    NotCompacted {
        /// First output wire violating the prefix property.
        output: usize,
    },
}

/// Check one valid-bit pattern against a switch's guarantee. Returns all
/// violations found (empty = the pattern is handled correctly).
pub fn check_concentration<S: ConcentratorSwitch + ?Sized>(
    switch: &S,
    valid: &[bool],
) -> Vec<ConcentrationViolation> {
    let routing = switch.route(valid);
    let k = valid.iter().filter(|&&v| v).count();
    let cap = switch.guaranteed_capacity();
    let mut violations = Vec::new();

    for (input, &v) in valid.iter().enumerate() {
        if !v && routing.assignment[input].is_some() {
            violations.push(ConcentrationViolation::PhantomMessage { input });
        }
    }

    if k <= cap {
        for (input, &v) in valid.iter().enumerate() {
            if v && routing.assignment[input].is_none() {
                violations.push(ConcentrationViolation::DroppedUnderCapacity { input, k });
            }
        }
    } else {
        let delivered = routing.routed();
        if delivered < cap {
            violations.push(ConcentrationViolation::UnderDelivered {
                delivered,
                required: cap,
            });
        }
    }

    if matches!(switch.kind(), ConcentratorKind::Hyperconcentrator) {
        // The first min(k, m) outputs must carry messages, the rest none.
        let expect = k.min(switch.outputs());
        for (out, src) in routing.output_source.iter().enumerate() {
            let should_carry = out < expect;
            if src.is_some() != should_carry {
                violations.push(ConcentrationViolation::NotCompacted { output: out });
                break;
            }
        }
    }

    violations
}

/// §1's observation, as a type: an `(n/α, m/α, α)` partial concentrator used
/// wherever an n-by-m *perfect* concentrator is required, "at the cost of a
/// 1/α-factor increase in the number of input and output wires".
///
/// The adapter keeps the inner switch's physical ports (`n/α` inputs and
/// `m/α` output wires — that is the wire cost the paper talks about) but
/// delivers the n-by-m *perfect* guarantee: with `k ≤ m` offered messages
/// every one is routed, and with `k > m` at least `m` are. The first `n`
/// inner inputs are the adapter's inputs; the rest are tied invalid.
pub struct PerfectFromPartial<S> {
    inner: S,
    n: usize,
    m: usize,
}

impl<S: ConcentratorSwitch> PerfectFromPartial<S> {
    /// Wrap `inner`, using it as an `n`-by-`m` perfect concentrator.
    ///
    /// # Panics
    /// Unless `inner` guarantees at least `m` routed messages
    /// (`αm_inner ≥ m`) and has at least `n` inputs.
    pub fn new(inner: S, n: usize, m: usize) -> Self {
        assert!(m <= n, "perfect concentrator requires m <= n");
        assert!(inner.inputs() >= n, "inner switch has too few inputs");
        assert!(
            inner.guaranteed_capacity() >= m,
            "inner switch guarantees {} < m = {m}",
            inner.guaranteed_capacity()
        );
        PerfectFromPartial { inner, n, m }
    }

    /// The wrapped switch.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The emulated perfect concentrator's `m` (its delivery guarantee);
    /// the physical output wires number [`ConcentratorSwitch::outputs`].
    pub fn effective_m(&self) -> usize {
        self.m
    }
}

impl<S: ConcentratorSwitch> ConcentratorSwitch for PerfectFromPartial<S> {
    fn inputs(&self) -> usize {
        self.n
    }

    fn outputs(&self) -> usize {
        self.inner.outputs()
    }

    fn kind(&self) -> ConcentratorKind {
        ConcentratorKind::Perfect
    }

    fn guaranteed_capacity(&self) -> usize {
        self.m
    }

    fn route(&self, valid: &[bool]) -> Routing {
        assert_eq!(valid.len(), self.n);
        let mut padded = valid.to_vec();
        padded.resize(self.inner.inputs(), false);
        let inner_routing = self.inner.route(&padded);
        let assignment = inner_routing.assignment[..self.n].to_vec();
        Routing::from_assignment(assignment, self.inner.outputs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy hyperconcentrator: stable compaction by counting.
    struct ToyHyper {
        n: usize,
    }

    impl ConcentratorSwitch for ToyHyper {
        fn inputs(&self) -> usize {
            self.n
        }
        fn outputs(&self) -> usize {
            self.n
        }
        fn kind(&self) -> ConcentratorKind {
            ConcentratorKind::Hyperconcentrator
        }
        fn route(&self, valid: &[bool]) -> Routing {
            let mut rank = 0usize;
            let assignment = valid
                .iter()
                .map(|&v| {
                    if v {
                        rank += 1;
                        Some(rank - 1)
                    } else {
                        None
                    }
                })
                .collect();
            Routing::from_assignment(assignment, self.n)
        }
    }

    /// A broken switch that drops every second message.
    struct Lossy {
        n: usize,
    }

    impl ConcentratorSwitch for Lossy {
        fn inputs(&self) -> usize {
            self.n
        }
        fn outputs(&self) -> usize {
            self.n
        }
        fn kind(&self) -> ConcentratorKind {
            ConcentratorKind::Perfect
        }
        fn route(&self, valid: &[bool]) -> Routing {
            let mut rank = 0usize;
            let assignment = valid
                .iter()
                .map(|&v| {
                    if v {
                        rank += 1;
                        if rank.is_multiple_of(2) {
                            return None;
                        }
                        Some(rank - 1)
                    } else {
                        None
                    }
                })
                .collect();
            Routing::from_assignment(assignment, self.n)
        }
    }

    #[test]
    fn routing_round_trip_and_counts() {
        let r = Routing::from_assignment(vec![Some(1), None, Some(0)], 3);
        assert_eq!(r.routed(), 2);
        assert_eq!(r.output_source, vec![Some(2), Some(0), None]);
        let unrouted: Vec<usize> = r.unrouted_inputs(&[true, true, true]).collect();
        assert_eq!(unrouted, vec![1]);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn routing_rejects_shared_outputs() {
        Routing::from_assignment(vec![Some(0), Some(0)], 2);
    }

    #[test]
    #[should_panic(expected = ">= m")]
    fn routing_rejects_out_of_range() {
        Routing::from_assignment(vec![Some(5)], 2);
    }

    #[test]
    fn toy_hyper_passes_all_patterns() {
        let switch = ToyHyper { n: 8 };
        for pattern in 0u32..256 {
            let valid: Vec<bool> = (0..8).map(|i| (pattern >> i) & 1 == 1).collect();
            assert!(
                check_concentration(&switch, &valid).is_empty(),
                "pattern {pattern:#x}"
            );
        }
    }

    #[test]
    fn lossy_switch_is_caught() {
        let switch = Lossy { n: 4 };
        let violations = check_concentration(&switch, &[true, true, false, false]);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ConcentrationViolation::DroppedUnderCapacity { .. })));
    }

    #[test]
    fn phantom_messages_are_caught() {
        struct Phantom;
        impl ConcentratorSwitch for Phantom {
            fn inputs(&self) -> usize {
                2
            }
            fn outputs(&self) -> usize {
                2
            }
            fn kind(&self) -> ConcentratorKind {
                ConcentratorKind::Perfect
            }
            fn route(&self, _valid: &[bool]) -> Routing {
                Routing::from_assignment(vec![Some(0), Some(1)], 2)
            }
        }
        let violations = check_concentration(&Phantom, &[true, false]);
        assert!(violations
            .iter()
            .any(|v| matches!(v, ConcentrationViolation::PhantomMessage { input: 1 })));
    }

    #[test]
    fn guaranteed_capacity_floors_alpha_m() {
        struct P;
        impl ConcentratorSwitch for P {
            fn inputs(&self) -> usize {
                16
            }
            fn outputs(&self) -> usize {
                10
            }
            fn kind(&self) -> ConcentratorKind {
                ConcentratorKind::Partial { alpha: 0.75 }
            }
            fn route(&self, _valid: &[bool]) -> Routing {
                unimplemented!()
            }
        }
        assert_eq!(P.guaranteed_capacity(), 7);
    }

    #[test]
    fn perfect_from_partial_adapts_guarantee() {
        // ToyHyper(16) guarantees 16; use it as a 12-by-8 perfect switch.
        // The physical output wires stay 16 (the paper's 1/α wire cost);
        // the delivery guarantee becomes min(k, 8).
        let perfect = PerfectFromPartial::new(ToyHyper { n: 16 }, 12, 8);
        assert_eq!(perfect.inputs(), 12);
        assert_eq!(perfect.outputs(), 16);
        assert_eq!(perfect.effective_m(), 8);
        assert_eq!(perfect.guaranteed_capacity(), 8);
        // k <= m: everything routed.
        let mut valid = vec![false; 12];
        for i in [0usize, 3, 7, 11] {
            valid[i] = true;
        }
        assert!(check_concentration(&perfect, &valid).is_empty());
        // k > m: at least m messages delivered.
        let valid = vec![true; 12];
        let routing = perfect.route(&valid);
        assert!(routing.routed() >= 8);
        assert!(check_concentration(&perfect, &valid).is_empty());
    }
}
