//! The Revsort-based partial concentrator switch of §4 (Theorem 3).
//!
//! Three stages of √n-by-√n hyperconcentrator chips simulate Algorithm 1
//! (the first 1½ iterations of Revsort) on the valid-bit matrix:
//!
//! 1. stage 1 sorts the columns,
//! 2. a transposing crossbar feeds stage 2, which sorts the rows,
//! 3. wiring that rotates row `i` right by `rev(i)` and transposes feeds
//!    stage 3, which sorts the columns again.
//!
//! The outputs are the first `m` wires of the matrix in row-major order.
//! The result is an `(n, m, 1 − O(n^{3/4}/m))` partial concentrator with at
//! most `2√n + ⌈(lg n)/2⌉` data pins per chip, `Θ(√n)` chips, volume
//! `Θ(n^{3/2})`, and `3 lg n + O(1)` gate delays.

use serde::{Deserialize, Serialize};

use crate::spec::{ConcentratorKind, ConcentratorSwitch, Routing};
use crate::staged::{sort_stage, Axis, PinSource, StageKind, StagedSwitch, SwitchStage};

/// Physical realization; routing behaviour is identical, but the 3-D form
/// interposes the hardwired barrel-shifter boards of Figure 4 (costing
/// [`crate::barrel::BARREL_LEVELS`] extra gate delays) where the 2-D form
/// uses crossbar wiring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RevsortLayout {
    /// Figure 3: chips on one board, crossbar wiring between stages.
    TwoDee,
    /// Figure 4: three stacks of boards; stage-2 boards carry a barrel
    /// shifter hardwired to `rev(i)`.
    ThreeDee,
}

/// The three-stage Revsort-based partial concentrator switch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RevsortSwitch {
    inner: StagedSwitch,
    side: usize,
    layout: RevsortLayout,
}

impl RevsortSwitch {
    /// Build the switch for `n` inputs (n = 4^q) and `m ≤ n` outputs.
    ///
    /// # Panics
    /// If `√n` is not a power of two or `m > n` or `m == 0`.
    pub fn new(n: usize, m: usize, layout: RevsortLayout) -> Self {
        let side = integer_sqrt(n);
        assert_eq!(side * side, n, "Revsort switch requires square n");
        assert!(side.is_power_of_two(), "Revsort switch requires √n = 2^q");
        assert!(m > 0 && m <= n, "need 0 < m <= n");

        let rotation = rotate_rows_by_rev_permutation(side);
        let stages = match layout {
            RevsortLayout::TwoDee => vec![
                sort_stage(
                    side,
                    side,
                    Axis::Columns,
                    None,
                    None,
                    "stage 1: sort columns",
                ),
                sort_stage(side, side, Axis::Rows, None, None, "stage 2: sort rows"),
                sort_stage(
                    side,
                    side,
                    Axis::Columns,
                    Some(&rotation),
                    None,
                    "stage 3: rotate rows by rev(i), sort columns",
                ),
            ],
            RevsortLayout::ThreeDee => vec![
                sort_stage(
                    side,
                    side,
                    Axis::Columns,
                    None,
                    None,
                    "stack 1: sort columns",
                ),
                sort_stage(side, side, Axis::Rows, None, None, "stack 2: sort rows"),
                barrel_shifter_stage(side, &rotation),
                sort_stage(
                    side,
                    side,
                    Axis::Columns,
                    None,
                    None,
                    "stack 3: sort columns",
                ),
            ],
        };

        let epsilon = Self::epsilon_bound_for(n);
        let alpha = (1.0 - epsilon as f64 / m as f64).max(0.0);
        let inner = StagedSwitch::new(
            format!("Revsort switch (n={n}, m={m})"),
            n,
            m,
            ConcentratorKind::Partial { alpha },
            stages,
            // First m wires of the matrix in row-major order.
            (0..m).collect(),
        );
        RevsortSwitch {
            inner,
            side,
            layout,
        }
    }

    /// `√n`.
    pub fn side(&self) -> usize {
        self.side
    }

    /// The layout this instance models.
    pub fn layout(&self) -> RevsortLayout {
        self.layout
    }

    /// The proven nearsortedness bound: dirty rows ≤ `2⌈n^{1/4}⌉ − 1`, so
    /// ε ≤ `(2⌈n^{1/4}⌉ − 1)·√n = O(n^{3/4})`.
    pub fn epsilon_bound(&self) -> usize {
        Self::epsilon_bound_for(self.inner.n)
    }

    /// [`RevsortSwitch::epsilon_bound`] as a free function of `n`.
    pub fn epsilon_bound_for(n: usize) -> usize {
        let quarter_root = (n as f64).powf(0.25).ceil() as usize;
        let side = integer_sqrt(n);
        (2 * quarter_root - 1) * side
    }

    /// The underlying staged switch (stages, wiring, netlist elaboration).
    pub fn staged(&self) -> &StagedSwitch {
        &self.inner
    }

    /// Gate delays through the switch: `3 lg n + O(1)` (§4 quotes
    /// `6⌈lg √n⌉ + O(1)`; the 3-D layout adds the barrel constant).
    pub fn delay(&self) -> u32 {
        self.inner.delay()
    }
}

impl ConcentratorSwitch for RevsortSwitch {
    fn inputs(&self) -> usize {
        self.inner.n
    }

    fn outputs(&self) -> usize {
        self.inner.m
    }

    fn kind(&self) -> ConcentratorKind {
        self.inner.kind
    }

    fn route(&self, valid: &[bool]) -> Routing {
        self.inner.route(valid)
    }

    /// Exact integer capacity `m − ε` (avoids the default's f64 round
    /// trip through α, which can under-report by one).
    fn guaranteed_capacity(&self) -> usize {
        self.inner.m.saturating_sub(self.epsilon_bound())
    }
}

/// `⌊√n⌋` by Newton iteration (exact for the perfect squares we accept).
pub(crate) fn integer_sqrt(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let mut x = (n as f64).sqrt() as usize;
    while (x + 1) * (x + 1) <= n {
        x += 1;
    }
    while x * x > n {
        x -= 1;
    }
    x
}

/// The permutation rotating row `i` right by `rev(i)`: element `(i, j)`
/// moves to `(i, (rev(i) + j) mod √n)`.
pub(crate) fn rotate_rows_by_rev_permutation(side: usize) -> Vec<usize> {
    assert!(side.is_power_of_two());
    let q = side.trailing_zeros();
    let mut perm = vec![0usize; side * side];
    for i in 0..side {
        let r = meshsort::rev_bits(i, q);
        for j in 0..side {
            perm[i * side + j] = i * side + (r + j) % side;
        }
    }
    perm
}

/// A stack of pass-through barrel-shifter boards realizing `rotation` in
/// hardwired silicon (Figure 4's stage-2 boards, modeled as their own
/// stage so their pin counts and delay are accounted).
fn barrel_shifter_stage(side: usize, rotation: &[usize]) -> SwitchStage {
    let len = side * side;
    debug_assert_eq!(rotation.len(), len);
    // One barrel shifter per row; identity gather, rotated scatter.
    let input_map = (0..len).map(PinSource::Prev).collect();
    let output_map = rotation.iter().map(|&dst| Some(dst)).collect();
    SwitchStage {
        label: "stack 2b: hardwired barrel shifters".into(),
        kind: StageKind::PassThrough,
        chip_count: side,
        chip_pins: side,
        input_map,
        output_map,
        out_len: len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barrel::BARREL_LEVELS;
    use crate::spec::check_concentration;
    use meshsort::{revsort_algorithm1, Grid, SortOrder};

    fn bits_of(pattern: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| (pattern >> i) & 1 == 1).collect()
    }

    #[test]
    fn trace_equals_algorithm1_exhaustively_n16() {
        let switch = RevsortSwitch::new(16, 16, RevsortLayout::TwoDee);
        for pattern in 0u64..(1 << 16) {
            let valid = bits_of(pattern, 16);
            let traced: Vec<bool> = switch
                .staged()
                .trace(&valid)
                .iter()
                .map(|&(v, _)| v)
                .collect();
            let mut grid = Grid::from_row_major(4, 4, valid.clone());
            revsort_algorithm1(&mut grid, SortOrder::Descending);
            assert_eq!(&traced, grid.as_row_major(), "pattern {pattern:#x}");
        }
    }

    #[test]
    fn both_layouts_route_identically() {
        let two = RevsortSwitch::new(64, 28, RevsortLayout::TwoDee);
        let three = RevsortSwitch::new(64, 28, RevsortLayout::ThreeDee);
        let mut state = 7u64;
        for _ in 0..500 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let valid = bits_of(state, 64);
            assert_eq!(two.route(&valid), three.route(&valid));
        }
    }

    #[test]
    fn concentration_property_holds_on_random_patterns_n64() {
        let switch = RevsortSwitch::new(64, 48, RevsortLayout::TwoDee);
        let mut state = 42u64;
        for _ in 0..2000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let valid = bits_of(state, 64);
            let violations = check_concentration(&switch, &valid);
            assert!(violations.is_empty(), "{state:#x}: {violations:?}");
        }
    }

    #[test]
    fn delay_is_3_lg_n_plus_constant() {
        // 2-D: 3 stages × (2 lg √n + 2 pads) = 3 lg n + 6.
        for (n, lg_n) in [(16usize, 4u32), (64, 6), (256, 8), (1024, 10)] {
            let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::TwoDee);
            assert_eq!(switch.delay(), 3 * lg_n + 6, "n = {n}");
            let three = RevsortSwitch::new(n, n / 2, RevsortLayout::ThreeDee);
            assert_eq!(three.delay(), 3 * lg_n + 6 + BARREL_LEVELS, "n = {n} 3-D");
        }
    }

    #[test]
    fn netlist_depth_matches_delay_and_function() {
        let switch = RevsortSwitch::new(16, 12, RevsortLayout::TwoDee);
        let nl = switch.staged().build_netlist(true);
        assert_eq!(nl.depth(), switch.delay());
        // Function check against trace on a sample of patterns.
        for pattern in (0u64..(1 << 16)).step_by(397) {
            let valid = bits_of(pattern, 16);
            let traced: Vec<bool> = {
                let t = switch.staged().trace(&valid);
                switch
                    .staged()
                    .output_positions
                    .iter()
                    .map(|&p| t[p].0)
                    .collect()
            };
            assert_eq!(nl.eval(&valid), traced, "pattern {pattern:#x}");
        }
    }

    #[test]
    fn chip_count_is_3_sqrt_n() {
        let switch = RevsortSwitch::new(256, 128, RevsortLayout::TwoDee);
        assert_eq!(switch.staged().chip_count(), 3 * 16);
        // 3-D adds √n barrel boards.
        let three = RevsortSwitch::new(256, 128, RevsortLayout::ThreeDee);
        assert_eq!(three.staged().chip_count(), 4 * 16);
    }

    #[test]
    fn guaranteed_capacity_never_violated_exhaustive_n16() {
        // m = 16 = n, ε bound = (2*2-1)*4 = 12, capacity = 4.
        let switch = RevsortSwitch::new(16, 16, RevsortLayout::TwoDee);
        assert_eq!(switch.epsilon_bound(), 12);
        for pattern in 0u64..(1 << 16) {
            let valid = bits_of(pattern, 16);
            assert!(
                check_concentration(&switch, &valid).is_empty(),
                "pattern {pattern:#x}"
            );
        }
    }

    #[test]
    fn integer_sqrt_exact() {
        assert_eq!(integer_sqrt(0), 0);
        assert_eq!(integer_sqrt(1), 1);
        assert_eq!(integer_sqrt(16), 4);
        assert_eq!(integer_sqrt(17), 4);
        assert_eq!(integer_sqrt(1 << 20), 1 << 10);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square_n() {
        RevsortSwitch::new(48, 10, RevsortLayout::TwoDee);
    }
}
