//! Integration: bit-serial frames through real multichip switches, with
//! gate-level cross-checks of the data path.

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::spec::ConcentratorSwitch;
use concentrator::{ColumnsortSwitch, Hyperconcentrator};
use switchsim::traffic::TrafficGenerator;
use switchsim::{simulate_frame, ConcentrationStage, CongestionPolicy, Message, TrafficModel};

#[test]
fn payloads_survive_the_revsort_switch() {
    let switch = RevsortSwitch::new(64, 48, RevsortLayout::ThreeDee);
    let offered: Vec<Message> = (0..30)
        .map(|i| {
            Message::new(
                i as u64,
                (i * 7 + 2) % 64,
                vec![i as u8, (i * 3) as u8, 0xC3],
            )
        })
        .collect();
    let outcome = simulate_frame(&switch, &offered);
    assert_eq!(outcome.delivered.len(), 30);
    assert!(outcome.payloads_intact(&offered));
    // Every delivered message's output is within m and unique.
    let mut outputs: Vec<usize> = outcome.delivered.iter().map(|&(o, _)| o).collect();
    outputs.sort_unstable();
    outputs.dedup();
    assert_eq!(outputs.len(), 30);
    assert!(outputs.iter().all(|&o| o < 48));
}

#[test]
fn gate_level_datapath_matches_frame_simulation() {
    // Stream a frame through the hyperconcentrator's data-path *netlist*
    // cycle by cycle and compare with the message-level frame simulator.
    let n = 16;
    let chip = Hyperconcentrator::new(n);
    let datapath = chip.build_datapath_netlist(false);
    let offered: Vec<Message> = [(2usize, 0xA5u8), (5, 0x3C), (9, 0xFF), (14, 0x01)]
        .iter()
        .map(|&(src, byte)| Message::new(src as u64, src, vec![byte]))
        .collect();
    let outcome = simulate_frame(&chip, &offered);

    let valid: Vec<bool> = (0..n)
        .map(|i| offered.iter().any(|m| m.source == i))
        .collect();
    for cycle in 0..8 {
        // Inputs: valid bits held, plus this cycle's data bit per wire.
        let mut inputs = valid.clone();
        for i in 0..n {
            let bit = offered
                .iter()
                .find(|m| m.source == i)
                .map(|m| m.bit(cycle))
                .unwrap_or(false);
            inputs.push(bit);
        }
        let out = datapath.eval(&inputs);
        let (_vout, dout) = out.split_at(n);
        for (output_wire, message) in &outcome.delivered {
            assert_eq!(
                dout[*output_wire],
                message.bit(cycle),
                "cycle {cycle}: output {output_wire} bit mismatch"
            );
        }
    }
}

#[test]
fn stage_statistics_are_consistent_over_long_runs() {
    let switch = ColumnsortSwitch::new(32, 4, 64);
    for policy in [
        CongestionPolicy::Drop,
        CongestionPolicy::InputBuffer { capacity: 4 },
        CongestionPolicy::AckResend { max_retries: 2 },
    ] {
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.7 }, 128, 2, 0xEE);
        let mut stage = ConcentrationStage::new(&switch, policy);
        let report = stage.run(&mut generator, 500);
        assert_eq!(
            report.stats.offered,
            report.stats.delivered + report.stats.dropped + report.in_flight,
            "conservation under {policy:?}"
        );
        assert!(report.stats.throughput() <= switch.outputs() as f64);
        assert!(report.stats.delivery_ratio() > 0.0);
    }
}

#[test]
fn under_capacity_traffic_never_drops_regardless_of_policy() {
    // ε = 9 at s = 4, m = 96 ⇒ capacity 87; offer ~32/frame.
    let switch = ColumnsortSwitch::new(32, 4, 96);
    assert!(switch.guaranteed_capacity() >= 87);
    for policy in [
        CongestionPolicy::Drop,
        CongestionPolicy::AckResend { max_retries: 1 },
    ] {
        let mut generator =
            TrafficGenerator::new(TrafficModel::Bernoulli { p: 0.25 }, 128, 2, 0x77);
        let mut stage = ConcentrationStage::new(&switch, policy);
        let report = stage.run(&mut generator, 300);
        assert_eq!(report.stats.dropped, 0, "policy {policy:?}");
        assert_eq!(
            report.stats.delivered + report.in_flight,
            report.stats.offered
        );
    }
}
