//! Integration: the three layers of each switch — mesh sorting algorithm,
//! message-level staged switch, and gate-level netlist — must agree
//! exactly.

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::verify::SplitMix64;
use concentrator::{
    ColumnsortSwitch, FullColumnsortHyperconcentrator, FullRevsortHyperconcentrator,
};
use meshsort::{columnsort_steps123, revsort_algorithm1, revsort_full, Grid, SortOrder};

fn random_bits(n: usize, seed: u64, density: f64) -> Vec<bool> {
    SplitMix64(seed).valid_bits(n, density)
}

#[test]
fn revsort_switch_equals_algorithm_equals_netlist() {
    let n = 64;
    let switch = RevsortSwitch::new(n, n, RevsortLayout::TwoDee);
    let netlist = switch.staged().build_netlist(true);
    for seed in 0..100u64 {
        let valid = random_bits(n, seed, 0.15 + (seed % 8) as f64 * 0.1);
        // Layer 1: the mesh algorithm.
        let mut grid = Grid::from_row_major(8, 8, valid.clone());
        revsort_algorithm1(&mut grid, SortOrder::Descending);
        // Layer 2: the staged switch trace.
        let traced: Vec<bool> = switch
            .staged()
            .trace(&valid)
            .iter()
            .map(|&(v, _)| v)
            .collect();
        assert_eq!(
            &traced,
            grid.as_row_major(),
            "seed {seed}: trace != algorithm"
        );
        // Layer 3: the flat gate-level netlist.
        assert_eq!(
            netlist.eval(&valid),
            traced,
            "seed {seed}: netlist != trace"
        );
    }
}

#[test]
fn columnsort_switch_equals_algorithm_equals_netlist() {
    let (r, s) = (16usize, 4usize);
    let n = r * s;
    let switch = ColumnsortSwitch::new(r, s, n);
    let netlist = switch.staged().build_netlist(true);
    for seed in 0..100u64 {
        let valid = random_bits(n, seed * 31 + 7, 0.5);
        let mut grid = Grid::from_row_major(r, s, valid.clone());
        columnsort_steps123(&mut grid, SortOrder::Descending);
        let traced: Vec<bool> = switch
            .staged()
            .trace(&valid)
            .iter()
            .map(|&(v, _)| v)
            .collect();
        assert_eq!(&traced, grid.as_row_major(), "seed {seed}");
        assert_eq!(netlist.eval(&valid), traced, "seed {seed}");
    }
}

#[test]
fn full_revsort_switch_matches_full_algorithm() {
    let n = 64;
    let switch = FullRevsortHyperconcentrator::new(n);
    for seed in 0..60u64 {
        let valid = random_bits(n, seed * 13 + 1, 0.4);
        let mut grid = Grid::from_row_major(8, 8, valid.clone());
        revsort_full(&mut grid, SortOrder::Descending);
        let traced: Vec<bool> = switch
            .staged()
            .trace(&valid)
            .iter()
            .map(|&(v, _)| v)
            .collect();
        assert_eq!(&traced, grid.as_row_major(), "seed {seed}");
        assert!(
            SortOrder::Descending.is_sorted(&traced),
            "seed {seed}: not sorted"
        );
    }
}

#[test]
fn full_columnsort_netlist_matches_trace_with_constants() {
    // The padded step-7 stage uses hardwired constants: the netlist path
    // must agree with the message-level path through them.
    let switch = FullColumnsortHyperconcentrator::new(9, 3);
    let netlist = switch.staged().build_netlist(false);
    for seed in 0..60u64 {
        let valid = random_bits(27, seed * 17 + 3, 0.5);
        let expected: Vec<bool> = {
            let t = switch.staged().trace(&valid);
            switch
                .staged()
                .output_positions
                .iter()
                .map(|&p| t[p].0)
                .collect()
        };
        assert_eq!(netlist.eval(&valid), expected, "seed {seed}");
        // And the output order is compacted.
        assert!(SortOrder::Descending.is_sorted(&expected), "seed {seed}");
    }
}

#[test]
fn netlist_block_eval_agrees_with_scalar_across_switch() {
    let switch = RevsortSwitch::new(16, 12, RevsortLayout::TwoDee);
    let nl = switch.staged().build_netlist(false);
    let mut rng = SplitMix64(0xB10C);
    let blocks: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
    let block_out = nl.eval_block(&blocks);
    for lane in 0..64 {
        let valid: Vec<bool> = blocks.iter().map(|b| (b >> lane) & 1 == 1).collect();
        let scalar = nl.eval(&valid);
        for (o, &word) in block_out.iter().enumerate() {
            assert_eq!(
                scalar[o],
                (word >> lane) & 1 == 1,
                "lane {lane}, output {o}"
            );
        }
    }
}
