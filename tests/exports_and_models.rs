//! Integration: the export formats (Verilog, VCD, SVG, JSON) and the
//! analytical/fault models, exercised across crates.

use concentrator::faults::{degradation, ChipFault, FaultMode, FaultySwitch};
use concentrator::layout::{columnsort_layout_2d, revsort_layout_3d};
use concentrator::packaging::PackagingReport;
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::ColumnsortSwitch;
use switchsim::{frame_vcd, measure_delivery_curve, predict_drop, Message};

#[test]
fn verilog_export_of_a_real_switch_is_self_consistent() {
    let switch = ColumnsortSwitch::new(8, 2, 12);
    let nl = switch.staged().build_netlist(false);
    let verilog = nl.to_verilog("columnsort_8x2");
    // Structure: one input per n, one output per m, one assign per gate
    // (+ m output assigns).
    assert_eq!(verilog.matches("input  wire").count(), 16);
    assert_eq!(verilog.matches("output wire").count(), 12);
    assert_eq!(verilog.matches("assign").count(), nl.gates().len() + 12);
    // Folding before export drops assigns but keeps ports.
    let folded = nl.fold_constants().to_verilog("columnsort_8x2_folded");
    assert_eq!(folded.matches("input  wire").count(), 16);
    assert!(folded.matches("assign").count() <= verilog.matches("assign").count());
}

#[test]
fn vcd_of_a_multichip_frame_covers_all_wires() {
    let switch = RevsortSwitch::new(16, 12, RevsortLayout::TwoDee);
    let offered = vec![
        Message::new(0, 1, vec![0xDE]),
        Message::new(1, 7, vec![0xAD]),
        Message::new(2, 14, vec![0xBF]),
    ];
    let vcd = frame_vcd(&switch, &offered);
    assert_eq!(vcd.matches("$var wire 1 ").count(), 16 + 12);
    // Three valid setup bits on the inputs.
    let setup: &str = vcd
        .split("#0\n")
        .nth(1)
        .unwrap()
        .split("#1\n")
        .next()
        .unwrap();
    let input_ones = (0..16)
        .filter(|&i| {
            let id: String = {
                let mut n = i;
                let mut s = String::new();
                loop {
                    s.push((33 + (n % 94)) as u8 as char);
                    n /= 94;
                    if n == 0 {
                        break;
                    }
                }
                s
            };
            setup.contains(&format!("1{id}"))
        })
        .count();
    assert_eq!(input_ones, 3);
}

#[test]
fn geometric_and_unit_models_order_designs_identically() {
    // The two volume models use different constants but must agree on
    // which design is bigger.
    let small = RevsortSwitch::new(64, 32, RevsortLayout::ThreeDee);
    let large = RevsortSwitch::new(256, 128, RevsortLayout::ThreeDee);
    let unit_small = PackagingReport::revsort(&small).volume_units;
    let unit_large = PackagingReport::revsort(&large).volume_units;
    let geom_small = revsort_layout_3d(&small).volume();
    let geom_large = revsort_layout_3d(&large).volume();
    assert!(unit_small < unit_large);
    assert!(geom_small < geom_large);
}

#[test]
fn svg_scales_with_the_layout() {
    let small = columnsort_layout_2d(&ColumnsortSwitch::new(8, 2, 10)).to_svg();
    let large = columnsort_layout_2d(&ColumnsortSwitch::new(16, 4, 40)).to_svg();
    assert!(large.len() > small.len());
    assert!(small.contains("H1,0") && small.contains("H2,1"));
}

#[test]
fn analytic_model_tracks_fault_degradation() {
    // The analytic model over a *measured* curve adapts to a faulty
    // switch too: predictions from the degraded curve must sit below the
    // healthy ones.
    let switch = RevsortSwitch::new(64, 48, RevsortLayout::TwoDee);
    let healthy_curve = measure_delivery_curve(&switch, 40, 0xAB);
    let fault = ChipFault {
        stage: 0,
        chip: 1,
        mode: FaultMode::StuckInvalid,
    };
    let faulty = FaultySwitch::new(switch.staged(), vec![fault]);
    let faulty_curve = measure_delivery_curve(&faulty, 40, 0xAB);
    let p = 0.5;
    let healthy_pred = predict_drop(64, p, |k| healthy_curve[k].round() as usize);
    let faulty_pred = predict_drop(64, p, |k| faulty_curve[k].round() as usize);
    assert!(faulty_pred.delivered_per_frame < healthy_pred.delivered_per_frame);
    // And the degraded prediction matches direct measurement of the
    // faulty switch within a loose band.
    let direct = degradation(&faulty, p, 400, 0xCD);
    let predicted_ratio = faulty_pred.delivery_ratio;
    assert!(
        (direct - predicted_ratio).abs() < 0.05,
        "direct {direct} vs predicted {predicted_ratio}"
    );
}
