//! Integration: the Table 1 resource claims as executable assertions over
//! parameter sweeps of real constructions.

use concentrator::packaging::{Dim, PackagingReport};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::{ColumnsortSwitch, FullColumnsortHyperconcentrator};

fn fit_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    cov / var
}

#[test]
fn revsort_table1_row() {
    let ns = [64usize, 256, 1024, 4096, 16384];
    let mut pins = Vec::new();
    let mut chips = Vec::new();
    let mut volume = Vec::new();
    for &n in &ns {
        let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::ThreeDee);
        let pack = PackagingReport::revsort(&switch);
        let side = switch.side();
        // Exact pin formula: 2√n + ⌈(lg n)/2⌉.
        assert_eq!(
            pack.max_pins_per_chip(),
            2 * side + ((n as f64).log2() / 2.0).ceil() as usize
        );
        // Exact delay: 3 lg n + 6 + barrel constant.
        assert_eq!(
            pack.gate_delays,
            3 * (n as f64).log2() as u32 + 6 + concentrator::barrel::BARREL_LEVELS
        );
        pins.push(pack.max_pins_per_chip() as f64);
        chips.push(pack.total_chips() as f64);
        volume.push(pack.volume_units as f64);
    }
    let xs: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    assert!(
        (fit_exponent(&xs, &pins) - 0.5).abs() < 0.05,
        "pins not Θ(n^1/2)"
    );
    assert!(
        (fit_exponent(&xs, &chips) - 0.5).abs() < 0.05,
        "chips not Θ(n^1/2)"
    );
    assert!(
        (fit_exponent(&xs, &volume) - 1.5).abs() < 0.05,
        "volume not Θ(n^3/2)"
    );
}

#[test]
fn columnsort_table1_rows_across_beta() {
    // (β numerator, denominator, grids)
    for (beta, grids) in [
        (0.5f64, vec![(8usize, 8usize), (16, 16), (32, 32), (64, 64)]),
        (0.625, vec![(32, 8), (1024, 64)]),
        (0.75, vec![(8, 2), (64, 4), (512, 8), (4096, 16)]),
    ] {
        let mut xs = Vec::new();
        let mut pins = Vec::new();
        let mut chips = Vec::new();
        let mut volume = Vec::new();
        for (r, s) in grids {
            let n = r * s;
            let switch = ColumnsortSwitch::new(r, s, n / 2);
            let pack = PackagingReport::columnsort(&switch, Dim::ThreeDee);
            assert_eq!(pack.max_pins_per_chip(), 2 * r);
            assert_eq!(pack.total_chips(), 2 * s);
            assert_eq!(switch.epsilon_bound(), (s - 1) * (s - 1));
            xs.push(n as f64);
            pins.push((2 * r) as f64);
            chips.push((2 * s) as f64);
            volume.push(pack.volume_units as f64);
        }
        assert!(
            (fit_exponent(&xs, &pins) - beta).abs() < 0.03,
            "β = {beta}: pins not Θ(n^β)"
        );
        assert!(
            (fit_exponent(&xs, &chips) - (1.0 - beta)).abs() < 0.03,
            "β = {beta}: chips not Θ(n^(1−β))"
        );
        let vol_exp = fit_exponent(&xs, &volume);
        assert!(
            (vol_exp - (1.0 + beta)).abs() < 0.12,
            "β = {beta}: volume exponent {vol_exp} not ≈ {}",
            1.0 + beta
        );
    }
}

#[test]
fn two_dee_layouts_are_crossbar_dominated() {
    // §4: "the crossbar wiring area is Θ(n²), which dominates the total
    // chip area of Θ(n^{3/2})" — the ratio must grow like √n.
    let mut prev_ratio = 0.0;
    for n in [64usize, 256, 1024, 4096] {
        let switch = RevsortSwitch::new(n, n / 2, RevsortLayout::TwoDee);
        let pack = PackagingReport::revsort(&switch);
        let chip_area: u64 = pack
            .chip_types
            .iter()
            .map(|c| c.area_units * c.count as u64)
            .sum();
        let wiring = pack.area_units - chip_area;
        let ratio = wiring as f64 / chip_area as f64;
        assert!(ratio > prev_ratio, "crossbar dominance must grow with n");
        prev_ratio = ratio;
    }
    assert!(prev_ratio > 10.0, "at n = 4096 wiring must dwarf chip area");
}

#[test]
fn full_columnsort_matches_partial_asymptotics() {
    // §6: "the same asymptotic volume and chip count as the partial
    // concentrator switch of Section 5".
    for (r, s) in [(32usize, 4usize), (512, 8)] {
        let partial = ColumnsortSwitch::new(r, s, r * s / 2);
        let full = FullColumnsortHyperconcentrator::new(r, s);
        let p = PackagingReport::columnsort(&partial, Dim::ThreeDee);
        let f = PackagingReport::full_columnsort(&full);
        // Full uses 3s + (s+1) chips vs 2s: within a constant factor ≤ 3.
        let chip_ratio = f.total_chips() as f64 / p.total_chips() as f64;
        assert!(chip_ratio <= 3.0, "chip ratio {chip_ratio}");
        let vol_ratio = f.volume_units as f64 / p.volume_units as f64;
        assert!(vol_ratio <= 3.0, "volume ratio {vol_ratio}");
        // And exactly double the partial switch's delay (4 vs 2 stages of
        // identical chips).
        assert_eq!(f.gate_delays, 2 * p.gate_delays);
    }
}
