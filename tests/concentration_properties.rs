//! Property-based integration tests: the paper's guarantees as proptest
//! properties over random shapes and valid-bit patterns.

use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::spec::{check_concentration, ConcentratorSwitch};
use concentrator::{ColumnsortSwitch, FullRevsortHyperconcentrator, Hyperconcentrator};
use meshsort::{clean_dirty_split, nearsort_epsilon, SortOrder};
use proptest::prelude::*;

proptest! {
    /// Lemma 1, both directions, on arbitrary bit sequences: the measured ε
    /// and the clean/dirty decomposition satisfy the stated inequalities.
    #[test]
    fn lemma1_decomposition(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let eps = nearsort_epsilon(&bits, SortOrder::Descending);
        let split = clean_dirty_split(&bits);
        prop_assert!(split.satisfies_lemma1(bits.len(), eps));
        // Dirty window of an ε-nearsorted sequence is at most 2ε.
        prop_assert!(split.dirty_len <= 2 * eps || split.dirty_len == 0);
    }

    /// The hyperconcentrator chip compacts any pattern: functional model,
    /// and spec checker agree.
    #[test]
    fn hyperconcentrator_compacts(n in 1usize..64, seed in any::<u64>()) {
        let chip = Hyperconcentrator::new(n);
        let mut state = seed | 1;
        let valid: Vec<bool> = (0..n).map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state & 1 == 1
        }).collect();
        prop_assert!(check_concentration(&chip, &valid).is_empty());
        let out = chip.concentrate(&valid);
        prop_assert!(SortOrder::Descending.is_sorted(&out));
        prop_assert_eq!(
            out.iter().filter(|&&b| b).count(),
            valid.iter().filter(|&&b| b).count()
        );
    }

    /// Theorem 3's guarantee on the n = 16 and n = 64 switches for
    /// arbitrary patterns and output widths.
    #[test]
    fn revsort_switch_concentrates(
        m_frac in 1usize..=4,
        pattern in any::<u64>(),
    ) {
        for n in [16usize, 64] {
            let m = (n * m_frac / 4).max(1);
            let switch = RevsortSwitch::new(n, m, RevsortLayout::TwoDee);
            let valid: Vec<bool> = (0..n).map(|i| (pattern >> (i % 64)) & 1 == 1).collect();
            prop_assert!(check_concentration(&switch, &valid).is_empty());
        }
    }

    /// Theorem 4's guarantee across (r, s) shapes.
    #[test]
    fn columnsort_switch_concentrates(
        shape_idx in 0usize..4,
        m_frac in 1usize..=4,
        pattern in any::<u64>(),
    ) {
        let (r, s) = [(8usize, 2usize), (8, 4), (16, 4), (4, 4)][shape_idx];
        let n = r * s;
        let m = (n * m_frac / 4).max(1);
        let switch = ColumnsortSwitch::new(r, s, m);
        let valid: Vec<bool> = (0..n).map(|i| (pattern >> (i % 64)) & 1 == 1).collect();
        prop_assert!(check_concentration(&switch, &valid).is_empty());
    }

    /// Routing is always a partial injection: no two inputs share an
    /// output, and only valid inputs are routed.
    #[test]
    fn routing_is_partial_injection(pattern in any::<u64>()) {
        let switch = ColumnsortSwitch::new(8, 4, 20);
        let valid: Vec<bool> = (0..32).map(|i| (pattern >> (i % 64)) & 1 == 1).collect();
        let routing = switch.route(&valid);
        let mut seen = std::collections::HashSet::new();
        for (input, &slot) in routing.assignment.iter().enumerate() {
            if let Some(out) = slot {
                prop_assert!(valid[input], "invalid input {input} routed");
                prop_assert!(out < 20);
                prop_assert!(seen.insert(out), "output {out} shared");
            }
        }
    }

    /// The §6 hyperconcentrator compacts arbitrary patterns at n = 64.
    #[test]
    fn full_revsort_compacts(pattern in any::<u64>()) {
        let switch = FullRevsortHyperconcentrator::new(64);
        let valid: Vec<bool> = (0..64).map(|i| (pattern >> i) & 1 == 1).collect();
        prop_assert!(check_concentration(&switch, &valid).is_empty());
    }

    /// Monotonicity: adding a message never reduces the number delivered.
    #[test]
    fn delivery_is_monotone(pattern in any::<u64>(), extra in 0usize..32) {
        let switch = ColumnsortSwitch::new(8, 4, 16);
        let mut valid: Vec<bool> = (0..32).map(|i| (pattern >> (i % 64)) & 1 == 1).collect();
        let before = switch.route(&valid).routed();
        if !valid[extra] {
            valid[extra] = true;
            let after = switch.route(&valid).routed();
            prop_assert!(after >= before, "delivery dropped from {before} to {after}");
        }
    }
}
