//! Design-space exploration: given a packaging technology's pin budget,
//! which of the paper's switch designs fit, and at what cost?
//!
//! This is the engineering question §1 poses ("it may require more input
//! and output pins than are provided by the packaging technology") and
//! Table 1 answers asymptotically; here we answer it concretely for a
//! target switch size.
//!
//! Run with: `cargo run --release --example packaging_explorer [n] [pin_budget]`

use concentrator::packaging::{Dim, PackagingReport};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::spec::ConcentratorSwitch;
use concentrator::ColumnsortSwitch;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().map(|a| a.parse().expect("n")).unwrap_or(4096);
    let pin_budget: usize = args.next().map(|a| a.parse().expect("pins")).unwrap_or(256);
    let m = n / 2;
    let side = (n as f64).sqrt() as usize;
    if side * side != n || !side.is_power_of_two() {
        eprintln!("error: n must be 4^q (a square with power-of-two side); got {n}");
        eprintln!("try: 256, 1024, 4096, 16384");
        std::process::exit(2);
    }

    println!("target: n = {n} inputs, m = {m} outputs, pin budget {pin_budget} pins/chip\n");
    println!(
        "{:>28}  {:>5}  {:>10}  {:>6}  {:>7}  {:>12}  {:>8}",
        "design", "chips", "pins/chip", "fits?", "delays", "volume", "capacity"
    );

    // Revsort design.
    let revsort = RevsortSwitch::new(n, m, RevsortLayout::ThreeDee);
    let pack = PackagingReport::revsort(&revsort);
    print_row("Revsort", &pack, pin_budget, revsort.guaranteed_capacity());

    // Columnsort designs across the feasible (r, s) grid.

    let mut r = side;
    while r <= n {
        let s = n / r;
        if n.is_multiple_of(r) && r.is_multiple_of(s) {
            let switch = ColumnsortSwitch::new(r, s, m);
            let pack = PackagingReport::columnsort(&switch, Dim::ThreeDee);
            let beta = (r as f64).log2() / (n as f64).log2();
            print_row(
                &format!("Columnsort r={r} (β={beta:.2})"),
                &pack,
                pin_budget,
                switch.guaranteed_capacity(),
            );
        }
        r *= 2;
    }

    println!(
        "\npicking rule: smallest volume among designs whose pins fit the budget\n\
         and whose guaranteed capacity covers the offered load. Larger β cuts\n\
         the chip count and the dirty window (better capacity) but pays pins\n\
         and volume — Table 1's trade-off, now with concrete numbers."
    );
}

fn print_row(name: &str, pack: &PackagingReport, budget: usize, capacity: usize) {
    println!(
        "{:>28}  {:>5}  {:>10}  {:>6}  {:>7}  {:>12}  {:>8}",
        name,
        pack.total_chips(),
        pack.max_pins_per_chip(),
        if pack.max_pins_per_chip() <= budget {
            "yes"
        } else {
            "NO"
        },
        pack.gate_delays,
        pack.volume_units,
        capacity
    );
}
