//! Watch the mesh sorting algorithms at work on the valid-bit matrix —
//! the mechanism behind every switch in the paper.
//!
//! Prints the matrix after each step of Revsort Algorithm 1 and of
//! Columnsort steps 1–3, with dirty-row counts, then runs the full sorts.
//!
//! Run with: `cargo run --release --example mesh_sort_visualizer [seed]`

use concentrator::verify::SplitMix64;
use meshsort::{
    columnsort_steps123, dirty_row_band, nearsort_epsilon, rev_bits, revsort_full, Grid, SortOrder,
};

fn show(grid: &Grid<bool>, label: &str) {
    let (top, dirty, bottom) = dirty_row_band(grid);
    println!(
        "{label}: {top} clean 1-rows / {dirty} dirty / {bottom} clean 0-rows\n{}",
        grid.render_bits()
    );
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("seed"))
        .unwrap_or(0x5EED);
    let side = 16;
    let mut rng = SplitMix64(seed);
    let bits = rng.valid_bits(side * side, 0.45);

    println!("=== Revsort Algorithm 1 on a {side}x{side} valid-bit matrix ===\n");
    let mut grid = Grid::from_row_major(side, side, bits.clone());
    show(&grid, "input");
    grid.sort_columns(SortOrder::Descending);
    show(&grid, "step 1 (sort columns)");
    grid.sort_rows(SortOrder::Descending);
    show(&grid, "step 2 (sort rows)");
    let q = side.trailing_zeros();
    for i in 0..side {
        grid.rotate_row_right(i, rev_bits(i, q));
    }
    show(&grid, "step 3 (rotate row i by rev(i))");
    grid.sort_columns(SortOrder::Descending);
    show(&grid, "step 4 (sort columns)");
    let eps = nearsort_epsilon(grid.as_row_major(), SortOrder::Descending);
    println!("row-major nearsortedness after Algorithm 1: ε = {eps}\n");

    println!("=== Columnsort steps 1-3 on a 32x8 matrix ===\n");
    let mut grid = Grid::from_row_major(32, 8, rng.valid_bits(256, 0.45));
    let (t, d, b) = dirty_row_band(&grid);
    println!("input: {t}/{d}/{b} clean/dirty/clean rows");
    columnsort_steps123(&mut grid, SortOrder::Descending);
    show(&grid, "after steps 1-3");
    let eps = nearsort_epsilon(grid.as_row_major(), SortOrder::Descending);
    println!("row-major ε = {eps} (bound (s−1)² = 49)\n");

    println!("=== Full Revsort (with Shearsort finish) ===\n");
    let mut grid = Grid::from_row_major(side, side, bits);
    let schedule = revsort_full(&mut grid, SortOrder::Descending);
    show(&grid, "fully sorted");
    println!(
        "finishing schedule: {} shearsort pairs + uniform row phase = {} stacks",
        schedule.pairs,
        schedule.stacks()
    );
    assert!(SortOrder::Descending.is_sorted(grid.as_row_major()));
}
