//! Quickstart: build the two partial concentrator switches from the paper,
//! route a frame of bit-serial messages through each, and look at the
//! resource numbers that motivate the multichip designs.
//!
//! Run with: `cargo run --release --example quickstart`

use concentrator::packaging::{Dim, PackagingReport};
use concentrator::revsort_switch::{RevsortLayout, RevsortSwitch};
use concentrator::spec::ConcentratorSwitch;
use concentrator::{ColumnsortSwitch, Hyperconcentrator};
use switchsim::{simulate_frame, Message};

fn main() {
    // ------------------------------------------------------------------
    // 1. The single-chip building block: an n-by-n hyperconcentrator.
    // ------------------------------------------------------------------
    let chip = Hyperconcentrator::new(16);
    let netlist = chip.build_netlist(false);
    println!("16-by-16 hyperconcentrator chip:");
    println!("  gate delays: {} (= 2 lg 16)", netlist.depth());
    println!("  gates:       {}", netlist.area_report().gates);

    // Why multichip? A 4096-wire hyperconcentrator needs 2·4096 data pins
    // and Θ(n²) area on one chip — infeasible. The partial concentrators
    // split it across chips with √n-scale pins.

    // ------------------------------------------------------------------
    // 2. The Revsort-based switch (§4): n = 256 inputs, m = 192 outputs.
    // ------------------------------------------------------------------
    let revsort = RevsortSwitch::new(256, 192, RevsortLayout::ThreeDee);
    let pack = PackagingReport::revsort(&revsort);
    println!("\nRevsort switch, n = 256, m = 192:");
    println!("  load ratio α:     {:?}", revsort.kind());
    println!("  chips:            {}", pack.total_chips());
    println!("  pins per chip:    {}", pack.max_pins_per_chip());
    println!("  gate delays:      {} (3 lg n + O(1))", revsort.delay());
    println!("  3-D volume units: {}", pack.volume_units);

    // Route a frame of bit-serial messages.
    let offered: Vec<Message> = (0..40)
        .map(|i| Message::new(i as u64, (i * 6 + 1) % 256, vec![i as u8, 0xAB]))
        .collect();
    let outcome = simulate_frame(&revsort, &offered);
    println!(
        "  frame: offered {} messages, delivered {} (payloads intact: {})",
        offered.len(),
        outcome.delivered.len(),
        outcome.payloads_intact(&offered)
    );

    // ------------------------------------------------------------------
    // 3. The Columnsort-based switch (§5): trade pins for chips with β.
    // ------------------------------------------------------------------
    println!("\nColumnsort switches over n = 256 at different β:");
    for (r, s) in [(16usize, 16usize), (64, 4)] {
        let switch = ColumnsortSwitch::new(r, s, 192);
        let pack = PackagingReport::columnsort(&switch, Dim::ThreeDee);
        println!(
            "  r = {r:>3}, s = {s:>2}: ε = {:>3}, chips = {:>2}, pins/chip = {:>3}, \
             delays = {}, volume = {}",
            switch.epsilon_bound(),
            pack.total_chips(),
            pack.max_pins_per_chip(),
            switch.delay(),
            pack.volume_units
        );
    }

    // ------------------------------------------------------------------
    // 4. The guarantee in action: overload the switch and watch it still
    //    deliver its guaranteed capacity.
    // ------------------------------------------------------------------
    let switch = ColumnsortSwitch::new(64, 4, 192);
    let overload: Vec<Message> = (0..230)
        .map(|i| Message::new(i as u64, i, vec![0x55]))
        .collect();
    let outcome = simulate_frame(&switch, &overload);
    println!(
        "\noverload: offered {} > m = {}, delivered {} (guarantee: ≥ {})",
        overload.len(),
        switch.outputs(),
        outcome.delivered.len(),
        switch.guaranteed_capacity()
    );
    assert!(outcome.delivered.len() >= switch.guaranteed_capacity());
}
