//! A tour of the gate-level substrate: build the hyperconcentrator chip's
//! netlist, measure it every way the library can, fold a padded multichip
//! netlist, and run 64 test vectors in one bit-parallel pass.
//!
//! Run with: `cargo run --release --example gate_level_lab`

use concentrator::verify::SplitMix64;
use concentrator::{FullColumnsortHyperconcentrator, Hyperconcentrator};

fn main() {
    // ------------------------------------------------------------------
    // 1. The chip netlist and its cost under different technologies.
    // ------------------------------------------------------------------
    let n = 64;
    let chip = Hyperconcentrator::new(n);
    let nl = chip.build_netlist(false);
    let area = nl.area_report();
    println!("{n}-by-{n} hyperconcentrator chip netlist:");
    println!(
        "  gates: {}, literals: {}, max fan-in: {}",
        area.gates, area.literals, area.max_fan_in
    );
    println!("  depth (wide gates):   {} = 2 lg n", nl.depth());
    println!("  depth @ fan-in 4:     {}", nl.depth_bounded_fanin(4));
    println!("  depth @ fan-in 2:     {}", nl.depth_bounded_fanin(2));
    println!("  gates  @ fan-in 2:    {}", nl.gates_bounded_fanin(2));

    // ------------------------------------------------------------------
    // 2. 64 test vectors in one pass (bit-parallel evaluation).
    // ------------------------------------------------------------------
    let mut rng = SplitMix64(0x1AB);
    let blocks: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let out = nl.eval_block(&blocks);
    // Verify lane 17 against the functional model.
    let lane = 17;
    let valid: Vec<bool> = blocks.iter().map(|b| (b >> lane) & 1 == 1).collect();
    let expected = chip.concentrate(&valid);
    let got: Vec<bool> = out.iter().map(|w| (w >> lane) & 1 == 1).collect();
    assert_eq!(got, expected);
    println!("\n64 vectors evaluated in one block pass; lane {lane} matches the model.");

    // ------------------------------------------------------------------
    // 3. Constant folding on a padded multichip netlist.
    // ------------------------------------------------------------------
    let switch = FullColumnsortHyperconcentrator::new(32, 4);
    let flat = switch.staged().build_netlist(false);
    let folded = flat.fold_constants();
    println!("\nfull-Columnsort hyperconcentrator (32x4), flat netlist:");
    println!("  gates before folding: {}", flat.area_report().gates);
    println!(
        "  gates after folding:  {} ({:.1}% removed — the hardwired padding)",
        folded.area_report().gates,
        100.0 * (1.0 - folded.area_report().gates as f64 / flat.area_report().gates as f64)
    );
    let mut rng = SplitMix64(0x1AC);
    let valid = rng.valid_bits(128, 0.5);
    assert_eq!(flat.eval(&valid), folded.eval(&valid));
    println!("  function preserved (spot-checked).");
}
