//! A concentration tree — the up-link path of the "fat-tree with
//! constant-sized switches" work this paper sat beside at MIT (see the
//! surrounding 1987 VLSI report): many processors funnel messages toward
//! a narrow set of shared ports through levels of combinational partial
//! concentrator switches, all within one frame.
//!
//! 512 processors → groups of 32 onto 16 wires (β = 3/4 Columnsort
//! switches) → … → 32 root ports.
//!
//! Run with: `cargo run --release --example fat_tree_uplink`

use concentrator::spec::ConcentratorSwitch;
use concentrator::ColumnsortSwitch;
use switchsim::traffic::TrafficGenerator;
use switchsim::{regular_tree, ConcentrationStage, CongestionPolicy, TrafficModel};

fn main() {
    let n = 512;
    let net = regular_tree(n, 32, 16, 32, |ins, outs| {
        debug_assert_eq!(ins, 32);
        // 8×4 mesh: ε = 9; a 32→16 partial concentrator per group.
        Box::new(ColumnsortSwitch::new(8, 4, outs))
    });
    println!(
        "concentration tree: {} processors -> {} ports, {} levels ({:?} wires), {} switches\n",
        net.inputs(),
        net.outputs(),
        net.depth(),
        net.level_widths(),
        net.switch_count()
    );

    println!(
        "{:>6}  {:>9}  {:>9}  {:>10}  {:>10}",
        "load", "offered", "delivered", "ratio", "mean wait"
    );
    for load in [0.01, 0.03, 0.05, 0.08, 0.12, 0.2] {
        let mut generator = TrafficGenerator::new(TrafficModel::Bernoulli { p: load }, n, 4, 0xFA7);
        let mut stage =
            ConcentrationStage::new(&net, CongestionPolicy::InputBuffer { capacity: 8 });
        let report = stage.run(&mut generator, 300);
        println!(
            "{:>6.2}  {:>9}  {:>9}  {:>9.1}%  {:>10.2}",
            load,
            report.stats.offered,
            report.stats.delivered,
            100.0 * report.stats.delivery_ratio(),
            report.stats.mean_wait()
        );
    }

    println!(
        "\nthe knee sits where offered load crosses the root's {} ports per\n\
         frame ({}/512 ≈ {:.2} per-processor load): below it the combinational\n\
         cascade delivers everything with zero queueing — no setup cycles, no\n\
         latched state, exactly the property §1 argues for.",
        net.outputs(),
        net.outputs(),
        net.outputs() as f64 / n as f64
    );
}
