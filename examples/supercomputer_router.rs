//! The paper's motivating scenario (§1): a parallel supercomputer's
//! routing network, where many processors occasionally send bit-serial
//! messages toward a narrower shared resource — here, 256 processors
//! concentrated onto 64 memory-module ports.
//!
//! The example sweeps offered load across the switch's guaranteed capacity
//! and compares the three congestion-control policies §1 lists as
//! compatible with these switches.
//!
//! Run with: `cargo run --release --example supercomputer_router`

use concentrator::spec::ConcentratorSwitch;
use concentrator::ColumnsortSwitch;
use switchsim::traffic::TrafficGenerator;
use switchsim::{ConcentrationStage, CongestionPolicy, TrafficModel};

fn main() {
    let n = 256;
    let m = 64;
    // β = 3/4 Columnsort switch: r = 64, s = 4, ε = (s−1)² = 9, so the
    // guaranteed capacity is a meaningful m − 9 = 55 messages per frame.
    let switch = ColumnsortSwitch::new(64, 4, m);
    println!(
        "routing stage: {} processors -> {} memory ports, guaranteed capacity {} \
         messages/frame\n",
        n,
        m,
        switch.guaranteed_capacity()
    );

    let policies = [
        ("drop", CongestionPolicy::Drop),
        ("buffer(16)", CongestionPolicy::InputBuffer { capacity: 16 }),
        (
            "ack-resend(4)",
            CongestionPolicy::AckResend { max_retries: 4 },
        ),
    ];

    println!(
        "{:>6}  {:>13}  {:>10}  {:>9}  {:>10}  {:>9}",
        "load", "policy", "delivered", "lost", "mean wait", "retries"
    );
    for load in [0.05, 0.15, 0.25, 0.35, 0.5] {
        for (name, policy) in policies {
            let mut generator = TrafficGenerator::new(
                TrafficModel::Bursty {
                    p: load,
                    mean_burst: 6.0,
                },
                n,
                8, // 64-bit payloads
                0xACE,
            );
            let mut stage = ConcentrationStage::new(&switch, policy);
            let report = stage.run(&mut generator, 400);
            println!(
                "{:>6.2}  {:>13}  {:>9.1}%  {:>8.1}%  {:>10.2}  {:>9}",
                load,
                name,
                100.0 * report.stats.delivery_ratio(),
                100.0 * report.stats.loss_ratio(),
                report.stats.mean_wait(),
                report.stats.retries
            );
        }
        println!();
    }

    println!(
        "reading: below the guaranteed capacity (load ≲ {:.2}) every policy\n\
         delivers everything — the concentration guarantee makes congestion\n\
         control irrelevant. Past it, buffering and resending trade latency\n\
         and retries for delivery, exactly the §1 trade-off.",
        switch.guaranteed_capacity() as f64 / n as f64
    );
}
