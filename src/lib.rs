//! Facade crate re-exporting the whole multichip partial concentrator
//! switch library.
//!
//! Reproduction of Thomas H. Cormen, *Efficient Multichip Partial
//! Concentrator Switches* (MIT-LCS-TM-322, 1987). See the individual crates
//! for the substrates:
//!
//! * [`netlist`] — gate-level combinational circuit substrate,
//! * [`meshsort`] — Revsort / Columnsort / Shearsort mesh sorting,
//! * [`concentrator`] — the switches themselves plus packaging models,
//! * [`switchsim`] — clocked bit-serial message routing simulation.

pub use concentrator;
pub use meshsort;
pub use netlist;
pub use switchsim;
